"""Batch influence vectors and sensitivity signatures, lane-packed.

The scalar references live in :mod:`repro.core.sensitivity`; this module
reproduces their raw counts bit-for-bit for a whole batch at once:

* **influence** is one XOR + axis mask per lane pair — the Boolean
  difference ``(packed ^ (packed >> 2**i)) & rep_axis(i)`` — followed by
  the same strided popcount main chain the weight butterfly uses, so
  every lane's ``inf_i`` falls out of ``n`` reduction rounds per axis.
* **sensitivity** ripple-adds the ``n`` full-domain difference tables
  into per-lane counter bit-planes (the packed twin of the scalar
  bit-plane trick), builds the per-value point masks once for the whole
  batch, and reads every histogram — on-set, off-set and the ``n``
  boundary columns — through per-lane popcount reductions.

Both entry points silently fall back to the scalar implementations
below the kernel's byte-aligned lane floor (``n < 3``) — mirroring
:func:`repro.kernels.prekey.batch_prekeys` — and *above*
:data:`BATCH_MAX_N`: the influence pipeline is n reduction rounds per
axis (n^2 total) over the whole packed batch, and from ``n = 11`` up
that loses to the scalar per-table masked-popcount loops by ~7x
(28ms vs 4ms at n=14, B=256; the same reason
:data:`repro.kernels.popcount.AUTO_REDUCE_MAX_N` is tiny — bare
popcounts are already C-speed, so the packing buys nothing).  The slab
layout does not help here: its win comes from *sharing* one reduction
across all 2n cofactor counts, and influence needs a fresh XOR-ed
table per axis.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.kernels import lanes
from repro.kernels.prekey import supported as _prekey_supported
from repro.kernels.wordarray import SLAB_MIN_N

__all__ = ["BATCH_MAX_N", "batch_influence", "batch_sensitivity", "supported"]

BATCH_MAX_N = SLAB_MIN_N - 1
"""Widest tables the packed influence/sensitivity pipeline batches;
above this the scalar loops win (see the module docstring)."""


def supported(n: int) -> bool:
    """Whether the packed influence pipeline covers ``n`` (byte-aligned
    lanes at the bottom, the measured scalar crossover at the top)."""
    return _prekey_supported(n) and n <= BATCH_MAX_N


def _lane_counts(x: int, n: int, count: int, lb: int, total_bits: int):
    """Per-lane popcounts of ``x`` via the strided reduction main chain."""
    S = x
    for j in range(n):
        w = 1 << j
        m = lanes.rep_mask(w, total_bits)
        S = (S & m) + ((S >> w) & m)
    return lanes.extract_lanes(S, lb, count, 1 << n)


def batch_influence(bits_list: Sequence[int], n: int) -> List[Tuple[int, ...]]:
    """Influence vector of every table in the batch.

    Matches ``repro.core.sensitivity.influence_vector`` bit-for-bit;
    scalar fallback below the supported width.
    """
    count = len(bits_list)
    if not count:
        return []
    if not supported(n):
        return _scalar_influence(bits_list, n)
    packed = lanes.pack_tables(bits_list, n)
    total_bits = count << n
    lb = lanes.lane_bytes(n)
    cols = []
    for i in range(n):
        span = 1 << i
        am = lanes.rep_axis(n, i, total_bits)
        x = (packed ^ (packed >> span)) & am
        cols.append(_lane_counts(x, n, count, lb, total_bits))
    return [tuple(col[k] for col in cols) for k in range(count)]


def batch_sensitivity(
    bits_list: Sequence[int], n: int
) -> List[Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...], Tuple[int, ...]]]:
    """``(columns, hist_on, hist_off)`` of every table in the batch.

    Matches ``repro.core.sensitivity.sensitivity_data`` exactly; scalar
    fallback below the supported width.
    """
    count = len(bits_list)
    if not count:
        return []
    if not supported(n):
        return _scalar_sensitivity(bits_list, n)
    packed = lanes.pack_tables(bits_list, n)
    total_bits = count << n
    lb = lanes.lane_bytes(n)
    full = (1 << total_bits) - 1
    nplanes = n.bit_length()
    planes = [0] * nplanes
    diffs = []
    for i in range(n):
        span = 1 << i
        am = lanes.rep_axis(n, i, total_bits)
        x = (packed ^ (packed >> span)) & am
        d = x | (x << span)
        diffs.append(d)
        carry = d
        for p in range(nplanes):
            nxt = planes[p] & carry
            planes[p] ^= carry
            carry = nxt
    vmasks = []
    for v in range(n + 1):
        m = full
        for p in range(nplanes):
            m &= planes[p] if (v >> p) & 1 else (full ^ planes[p])
        vmasks.append(m)

    def counts(x: int):
        return _lane_counts(x, n, count, lb, total_bits)

    off = packed ^ full
    on_cols = [counts(m & packed) for m in vmasks]
    off_cols = [counts(m & off) for m in vmasks]
    col_cols = [[counts(m & d) for m in vmasks] for d in diffs]
    out = []
    for k in range(count):
        hist_on = tuple(on_cols[v][k] for v in range(n + 1))
        hist_off = tuple(off_cols[v][k] for v in range(n + 1))
        columns = tuple(
            tuple(col_cols[i][v][k] for v in range(n + 1)) for i in range(n)
        )
        out.append((columns, hist_on, hist_off))
    return out


def _scalar_influence(bits_list: Sequence[int], n: int) -> List[Tuple[int, ...]]:
    from repro.core import sensitivity as sens_mod

    return [sens_mod._influence_vector(n, b) for b in bits_list]


def _scalar_sensitivity(bits_list: Sequence[int], n: int):
    from repro.core import sensitivity as sens_mod

    return [sens_mod._sensitivity_data(n, b) for b in bits_list]
