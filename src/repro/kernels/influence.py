"""Batch influence vectors and sensitivity signatures, lane-packed.

The scalar references live in :mod:`repro.core.sensitivity`; this module
reproduces their raw counts bit-for-bit for a whole batch at once:

* **influence** is one XOR + axis mask per lane pair — the Boolean
  difference ``(packed ^ (packed >> 2**i)) & rep_axis(i)`` — followed by
  the same strided popcount main chain the weight butterfly uses, so
  every lane's ``inf_i`` falls out of ``n`` reduction rounds per axis.
* **sensitivity** ripple-adds the ``n`` full-domain difference tables
  into per-lane counter bit-planes (the packed twin of the scalar
  bit-plane trick), builds the per-value point masks once for the whole
  batch, and reads every histogram — on-set, off-set and the ``n``
  boundary columns — through per-lane popcount reductions.

Both entry points silently fall back to the scalar implementations
below the kernel's byte-aligned lane floor (``n < 3``), mirroring
:func:`repro.kernels.prekey.batch_prekeys`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.kernels import lanes
from repro.kernels.prekey import supported

__all__ = ["batch_influence", "batch_sensitivity", "supported"]


def _lane_counts(x: int, n: int, count: int, lb: int, total_bits: int):
    """Per-lane popcounts of ``x`` via the strided reduction main chain."""
    S = x
    for j in range(n):
        w = 1 << j
        m = lanes.rep_mask(w, total_bits)
        S = (S & m) + ((S >> w) & m)
    return lanes.extract_lanes(S, lb, count, 1 << n)


def batch_influence(bits_list: Sequence[int], n: int) -> List[Tuple[int, ...]]:
    """Influence vector of every table in the batch.

    Matches ``repro.core.sensitivity.influence_vector`` bit-for-bit;
    scalar fallback below the supported width.
    """
    count = len(bits_list)
    if not count:
        return []
    if not supported(n):
        return _scalar_influence(bits_list, n)
    packed = lanes.pack_tables(bits_list, n)
    total_bits = count << n
    lb = lanes.lane_bytes(n)
    cols = []
    for i in range(n):
        span = 1 << i
        am = lanes.rep_axis(n, i, total_bits)
        x = (packed ^ (packed >> span)) & am
        cols.append(_lane_counts(x, n, count, lb, total_bits))
    return [tuple(col[k] for col in cols) for k in range(count)]


def batch_sensitivity(
    bits_list: Sequence[int], n: int
) -> List[Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...], Tuple[int, ...]]]:
    """``(columns, hist_on, hist_off)`` of every table in the batch.

    Matches ``repro.core.sensitivity.sensitivity_data`` exactly; scalar
    fallback below the supported width.
    """
    count = len(bits_list)
    if not count:
        return []
    if not supported(n):
        return _scalar_sensitivity(bits_list, n)
    packed = lanes.pack_tables(bits_list, n)
    total_bits = count << n
    lb = lanes.lane_bytes(n)
    full = (1 << total_bits) - 1
    nplanes = n.bit_length()
    planes = [0] * nplanes
    diffs = []
    for i in range(n):
        span = 1 << i
        am = lanes.rep_axis(n, i, total_bits)
        x = (packed ^ (packed >> span)) & am
        d = x | (x << span)
        diffs.append(d)
        carry = d
        for p in range(nplanes):
            nxt = planes[p] & carry
            planes[p] ^= carry
            carry = nxt
    vmasks = []
    for v in range(n + 1):
        m = full
        for p in range(nplanes):
            m &= planes[p] if (v >> p) & 1 else (full ^ planes[p])
        vmasks.append(m)

    def counts(x: int):
        return _lane_counts(x, n, count, lb, total_bits)

    off = packed ^ full
    on_cols = [counts(m & packed) for m in vmasks]
    off_cols = [counts(m & off) for m in vmasks]
    col_cols = [[counts(m & d) for m in vmasks] for d in diffs]
    out = []
    for k in range(count):
        hist_on = tuple(on_cols[v][k] for v in range(n + 1))
        hist_off = tuple(off_cols[v][k] for v in range(n + 1))
        columns = tuple(
            tuple(col_cols[i][v][k] for v in range(n + 1)) for i in range(n)
        )
        out.append((columns, hist_on, hist_off))
    return out


def _scalar_influence(bits_list: Sequence[int], n: int) -> List[Tuple[int, ...]]:
    from repro.core import sensitivity as sens_mod

    return [sens_mod._influence_vector(n, b) for b in bits_list]


def _scalar_sensitivity(bits_list: Sequence[int], n: int):
    from repro.core import sensitivity as sens_mod

    return [sens_mod._sensitivity_data(n, b) for b in bits_list]
