"""Lane packing and replicated-mask construction for bit-parallel kernels.

A *batch* of ``B`` packed truth tables, each ``2**n`` bits wide, is laid
out in the lanes of a single wide Python integer: lane ``k`` occupies
bytes ``[k * lane_bytes, (k + 1) * lane_bytes)`` of the little-endian
byte image, where ``lane_bytes = max(1, 2**n // 8)``.  One big-integer
operation (``& ^ + >>``) then processes every lane simultaneously inside
CPython's C long arithmetic, which is the entire point of the kernel
layer: the per-lane Python interpreter overhead of the scalar loops is
replaced by a handful of machine-speed passes over a contiguous buffer.

Tables narrower than a byte (``n < 3``) still get a whole byte lane so
that packing and extraction stay byte-aligned; the slack bits are zero
on input and every kernel keeps them zero (all cross-lane shifts are
immediately masked back into the lane's live bits).

The replicated masks used by the kernels (a field mask repeated across
the integer, a single bit repeated per lane, an axis mask repeated per
lane) are built by doubling — O(log lanes) big-int ops — and memoized
in plain dict caches keyed by their small integer parameters.  The
caches are cleared wholesale past a size bound: masks rebuild cheaply,
and batches of many distinct sizes must not pin memory forever.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.utils import bitops

_CACHE_LIMIT = 1024
"""Per-cache entry bound; a full cache is cleared, not LRU-evicted."""


def lane_bytes(n: int) -> int:
    """Bytes per lane for ``n``-variable tables (byte-aligned, min 1)."""
    return max(1, (1 << n) >> 3)


def lane_bits(n: int) -> int:
    """Bits per lane (``8 * lane_bytes``; equals ``2**n`` for n >= 3)."""
    return lane_bytes(n) << 3


def pack_tables(bits_list: Sequence[int], n: int) -> int:
    """Pack a batch of ``2**n``-bit tables into one wide integer.

    Lane ``k`` holds ``bits_list[k]``; the join runs at C speed via one
    ``bytes`` concatenation and one ``int.from_bytes``.
    """
    lb = lane_bytes(n)
    to_b = (lambda nb: lambda b: b.to_bytes(nb, "little"))(lb)
    return int.from_bytes(b"".join(map(to_b, bits_list)), "little")


def unpack_tables(packed: int, n: int, count: int) -> List[int]:
    """Inverse of :func:`pack_tables`: the ``count`` per-lane integers."""
    lb = lane_bytes(n)
    buf = packed.to_bytes(count * lb, "little")
    return [
        int.from_bytes(buf[k * lb:(k + 1) * lb], "little") for k in range(count)
    ]


_family_cache: dict = {}
"""Widest mask built so far per *family* (one family = one replication
pattern, any total width), as ``family_key -> (built_width, mask)``.

Engine buckets come in many distinct sizes, so the per-(pattern,
total_bits) exact caches below miss constantly on ``total_bits``.  The
family cache makes every such miss O(1)-ish: a narrower request is one
AND off the widest mask already built, and a wider request resumes the
doubling from it instead of restarting at the seed.  Entries are the
untrimmed power-of-two image so the doubling can always continue."""


def _grow(family_key, seed: int, start_width: int, total_bits: int) -> int:
    got = _family_cache.get(family_key)
    if got is not None and got[0] >= total_bits:
        m = got[1]
    else:
        if got is not None:
            w, m = got
        else:
            m = seed
            w = start_width
        while w < total_bits:
            m |= m << w
            w <<= 1
        if len(_family_cache) >= _CACHE_LIMIT:
            _family_cache.clear()
        _family_cache[family_key] = (w, m)
    # The doubling overshoots most total_bits; trim so masks used in
    # XOR/ADD position (not just AND) never widen the packed batch.
    return m & ((1 << total_bits) - 1)


_mask_cache: dict = {}


def rep_mask(width: int, total_bits: int) -> int:
    """The low ``width`` bits of every ``2 * width`` block, repeated.

    This is the even-field selector of a strided butterfly round with
    field width ``width``.
    """
    key = (width, total_bits)
    m = _mask_cache.get(key)
    if m is None:
        if len(_mask_cache) >= _CACHE_LIMIT:
            _mask_cache.clear()
        m = _mask_cache[key] = _grow(
            ("m", width), (1 << width) - 1, width << 1, total_bits
        )
    return m


_bit_cache: dict = {}


def rep_bit(bitpos: int, stride: int, total_bits: int) -> int:
    """Bit ``bitpos`` set in every ``stride``-bit lane."""
    key = (bitpos, stride, total_bits)
    m = _bit_cache.get(key)
    if m is None:
        if len(_bit_cache) >= _CACHE_LIMIT:
            _bit_cache.clear()
        m = _bit_cache[key] = _grow(
            ("b", bitpos, stride), 1 << bitpos, stride, total_bits
        )
    return m


_const_cache: dict = {}


def rep_const(value: int, stride: int, total_bits: int) -> int:
    """``value`` replicated into every ``stride``-bit lane.

    ``value`` must fit in ``stride`` bits; used for per-field additive
    constants (the Walsh bias) and whole-table masks.
    """
    key = (value, stride, total_bits)
    m = _const_cache.get(key)
    if m is None:
        if len(_const_cache) >= _CACHE_LIMIT:
            _const_cache.clear()
        m = _const_cache[key] = _grow(
            ("c", value, stride), value, stride, total_bits
        )
    return m


_axis_cache: dict = {}


def rep_axis(n: int, i: int, total_bits: int) -> int:
    """:func:`repro.utils.bitops.axis_mask` replicated into every lane.

    Cached under the small ``(n, i, total_bits)`` key rather than the
    (huge) mask value, so lookups never hash a big integer.
    """
    key = (n, i, total_bits)
    m = _axis_cache.get(key)
    if m is None:
        if len(_axis_cache) >= _CACHE_LIMIT:
            _axis_cache.clear()
        m = _axis_cache[key] = _grow(
            ("a", n, i), bitops.axis_mask(n, i), lane_bits(n), total_bits
        )
    return m


def extract_lanes(x: int, lane_nbytes: int, count: int, maxval: int):
    """Per-lane field values of ``x`` where each lane's value is known
    to be at most ``maxval``.

    Three tiers, fastest first: values below 256 come straight out of a
    strided ``bytes`` slice (one C call); values that may *equal* 256
    reuse the byte column unless a lane actually overflowed (a low byte
    of 0 is then ambiguous with value 0); anything wider slices as many
    byte columns as ``maxval`` needs — two via a zip of the low/high
    columns, more via ``int.from_bytes`` per lane (weights reach
    ``2**n``, so n >= 16 lands here).  Returns a ``bytes`` (tier 1/2)
    or ``list`` — both index and iterate like a sequence of ints.
    """
    buf = x.to_bytes(count * lane_nbytes, "little")
    lows = buf[0::lane_nbytes]
    if maxval < 256:
        return lows
    if maxval == 256 and 0 not in lows:
        return lows
    if maxval < 65536:
        highs = buf[1::lane_nbytes]
        return [lo | (hi << 8) for lo, hi in zip(lows, highs)]
    nb = (maxval.bit_length() + 7) >> 3
    if nb > lane_nbytes:
        raise ValueError(
            f"maxval {maxval} needs {nb} bytes but lanes hold {lane_nbytes}"
        )
    ib = int.from_bytes
    return [
        ib(buf[k * lane_nbytes:k * lane_nbytes + nb], "little")
        for k in range(count)
    ]
