"""Batch popcount: per-lane on-set weights and the shared half-weight tree.

The heart of the kernel layer is one *shared popcount butterfly* over a
packed batch (:func:`butterfly`).  Its main chain widens the counting
fields one axis at a time — after round ``j`` every ``2**(j+1)``-bit
field of ``S`` holds the popcount of that block — and before each
widening the even-field slice ``S & m`` is saved.  That slice, reduced
independently over the *remaining* axes, is exactly the negative
cofactor weight ``ncw_i`` of axis ``i`` for every lane: the branch point
already separated the ``x_i = 0`` half-blocks from the ``x_i = 1``
half-blocks.  The batch therefore gets the full weight *and* all ``2n``
cofactor weights (``pcw_i = |f| - ncw_i``) from ``n + n*(n-1)/2``
butterfly rounds instead of ``2n`` masked popcounts per function.

The round body uses the 4-op form ``t = S & m; S = t + ((S >> w) & m)``
rather than the textbook ``(S + (S >> w)) & m``: the latter saves an op
on paper but measures slower in CPython because the addition runs at
double width before masking.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.kernels import lanes

AUTO_REDUCE_MAX_N = 2
"""``batch_weights`` strategy crossover.  BENCH_kernels.json measured a
plain ``int.bit_count`` per lane beating the packed tree reduction at
*every* width on CPython 3.11 — a single C popcount is simply too cheap
to amortize the packing — so ``"auto"`` never picks ``"reduce"`` for
standalone total weights (the constant sits below the kernel's ``n >= 3``
floor).  The reduction still earns its keep where its intermediate
levels are reused: the pre-key pipeline reads all ``2n`` cofactor
weights out of one shared butterfly."""


def butterfly(packed: int, n: int, count: int) -> Tuple[int, List[int]]:
    """Shared popcount tree over a packed batch.

    Returns ``(S, ncw)``: ``S`` has each lane's total weight in its low
    ``n + 1`` bits, and ``ncw[i]`` has each lane's negative cofactor
    weight of axis ``i`` in the same position.  Lanes must be the packed
    layout of :func:`repro.kernels.lanes.pack_tables` with ``n >= 3``
    (byte-aligned lanes of exactly ``2**n`` bits).
    """
    total_bits = count << n
    S = packed
    branches = []
    for j in range(n):
        w = 1 << j
        m = lanes.rep_mask(w, total_bits)
        t = S & m
        branches.append(t)
        S = t + ((S >> w) & m)
    ncw = []
    for i in range(n):
        E = branches[i]
        for j in range(i + 1, n):
            w = 1 << j
            m = lanes.rep_mask(w, total_bits)
            E = (E & m) + ((E >> w) & m)
        ncw.append(E)
    return S, ncw


def packed_weights(packed: int, n: int, count: int) -> Sequence[int]:
    """Per-lane weights of an already-packed batch via the main chain."""
    total_bits = count << n
    S = packed
    for j in range(n):
        w = 1 << j
        m = lanes.rep_mask(w, total_bits)
        S = (S & m) + ((S >> w) & m)
    return lanes.extract_lanes(S, lanes.lane_bytes(n), count, 1 << n)


def batch_weights(
    bits_list: Sequence[int], n: int, strategy: str = "auto"
) -> List[int]:
    """On-set weight of every table in the batch.

    ``strategy``: ``"extract"`` calls ``int.bit_count`` per lane (one C
    call each), ``"reduce"`` packs the batch and runs the masked strided
    reduction, ``"auto"`` picks by the measured crossover
    (:data:`AUTO_REDUCE_MAX_N`).  All strategies return identical
    values; the reduce path additionally requires ``3 <= n`` and raises
    below that.
    """
    if strategy == "auto":
        # Measured crossover: extract wins at every width (see
        # AUTO_REDUCE_MAX_N, kept below the kernel's n >= 3 floor), so
        # auto always extracts until a future benchmark moves it.
        strategy = "extract"
    if strategy == "extract":
        return [b.bit_count() for b in bits_list]
    if strategy != "reduce":
        raise ValueError(f"unknown batch_weights strategy {strategy!r}")
    if n < 3:
        raise ValueError(
            f"batch_weights strategy 'reduce' requires n >= 3, got n={n}"
        )
    count = len(bits_list)
    if not count:
        return []
    return list(packed_weights(lanes.pack_tables(bits_list, n), n, count))
