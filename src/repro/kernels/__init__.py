"""Bit-parallel batch kernels: SIMD-on-bigints for the hot paths.

This package packs a batch of ``B`` truth tables (width ``2**n``) into
the lanes of one wide Python integer and replaces per-function Python
loops with a handful of big-integer operations that CPython executes in
C.  The layer is dependency-free (no numpy): the "vector unit" is the
arbitrary-precision integer itself.

Modules
-------
:mod:`repro.kernels.lanes`
    Lane layout, packing/extraction, replicated-mask builders.
:mod:`repro.kernels.popcount`
    Per-lane weights and the shared popcount butterfly that yields the
    total weight and all ``2n`` cofactor weights of every lane at once.
:mod:`repro.kernels.prekey`
    The fused pipeline producing the engine's coarse NPN pre-keys plus
    cofactor-weight vectors for a whole bucket in one pass.
:mod:`repro.kernels.transform`
    Lane-wise axis flips, input negation, Moebius and FPRM transforms.
:mod:`repro.kernels.wordarray`
    The word-array ("slab") layout for large ``n``: the batch is held
    as ``2**h`` slab integers, each slicing one ``2**(n-h)``-bit chunk
    out of every table, so the butterfly runs O(n) wide passes instead
    of the flat layout's O(n^2) and per-word popcounts come from one
    ``bytes.translate`` per slab.
:mod:`repro.kernels.influence`
    Per-lane influence vectors and sensitivity histograms for the
    engine's influence/sensitivity pre-key tiers.

Dispatch
--------
Call sites pick the implementation through :func:`should_batch`, driven
by a ``kernel`` mode string: ``"scalar"`` never batches, ``"batch"``
always batches where the kernel supports the width, and ``"auto"``
(default) batches once a group reaches :data:`KERNEL_MIN_BATCH` lanes —
below that the packing overhead eats the win.  The pre-key pipeline
needs byte-aligned lanes (``n >= 3``); narrower groups silently take
the scalar path, counted in ``kernels.scalar_fallbacks``.

Batched groups then pick a *layout* through :func:`choose_layout`: the
flat lane-packed layout up to ``n = 10``, the slab word-array layout
from :data:`repro.kernels.wordarray.SLAB_MIN_N` up (where the flat
butterfly's O(n^2) rounds over a megabyte-scale integer fall behind the
scalar loop — measured in BENCH_kernels.json).  ``"lanes"`` and
``"words"`` force a layout for differential testing and benchmarks;
``"words"`` below the slab floor falls back to the flat layout rather
than erroring, so CLI sweeps can hold the flag constant across n.

When observability is enabled (:mod:`repro.obs.runtime`) the wrappers
record call counts, lane throughput and wall time under the
``kernels.*`` namespace.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from repro.kernels import (
    influence,
    lanes,
    popcount,
    prekey,
    transform,
    wordarray,
)
from repro.kernels.influence import batch_influence, batch_sensitivity
from repro.kernels.lanes import pack_tables, unpack_tables
from repro.kernels.popcount import (
    AUTO_REDUCE_MAX_N,
    batch_weights,
    butterfly,
    packed_weights,
)
from repro.kernels.prekey import batch_cofactor_weights, batch_prekeys
from repro.kernels.transform import (
    batch_flip_axis,
    batch_fprm,
    batch_mobius,
    batch_negate_inputs,
    batch_output_complement,
)
from repro.kernels.wordarray import fprm_ladder_weights
from repro.obs import runtime as _obs

__all__ = [
    "AUTO_REDUCE_MAX_N",
    "KERNEL_MIN_BATCH",
    "KERNEL_MODES",
    "batch_cofactor_weights",
    "batch_flip_axis",
    "batch_fprm",
    "batch_influence",
    "batch_mobius",
    "batch_negate_inputs",
    "batch_output_complement",
    "batch_prekeys",
    "batch_sensitivity",
    "batch_weights",
    "butterfly",
    "choose_layout",
    "coarse_prekeys",
    "fprm_ladder_weights",
    "influence",
    "influence_vectors",
    "lanes",
    "pack_tables",
    "packed_weights",
    "popcount",
    "prekey",
    "should_batch",
    "transform",
    "unpack_tables",
    "wordarray",
]

KERNEL_MODES = ("auto", "scalar", "batch", "lanes", "words")
"""Valid values of the ``kernel`` dispatch mode.

``"auto"``/``"scalar"``/``"batch"`` decide *whether* to batch;
``"lanes"``/``"words"`` additionally pin the batched *layout* (flat
lane-packed vs slab word-array) instead of letting
:func:`choose_layout` pick by width."""

KERNEL_MIN_BATCH = 8
"""``"auto"`` crossover: batch groups of at least this many distinct
functions.  The packed pipeline was never slower than scalar from 16
lanes up in BENCH_kernels.json; 8 leaves margin for the pack cost on
cache-cold lanes."""


def should_batch(n: int, count: int, kernel: str = "auto") -> bool:
    """Whether a group of ``count`` ``n``-variable functions should go
    through the packed pre-key pipeline under dispatch mode ``kernel``."""
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}"
        )
    if kernel == "scalar" or count < 2 or not prekey.supported(n):
        if kernel != "scalar" and count >= 2 and _obs.enabled:
            _obs.registry.counter("kernels.scalar_fallbacks").inc()
        return False
    if kernel != "auto":
        return True
    return count >= KERNEL_MIN_BATCH


def choose_layout(n: int, count: int, kernel: str = "auto") -> str:
    """Pick the batched layout — ``"lanes"`` (flat lane-packed) or
    ``"words"`` (slab word-array) — for a group that passed
    :func:`should_batch`.

    The crossover is by width alone: the flat butterfly does O(n^2)
    rounds over the whole packed batch and falls behind scalar from
    ``n = 11`` up, exactly where the slab pipeline's O(n) passes take
    over (:data:`repro.kernels.wordarray.SLAB_MIN_N`).  ``count`` is
    accepted for symmetry with :func:`should_batch` and for future
    tuning, but the measured crossover did not move with batch size.
    A forced ``"words"`` below the slab floor degrades to ``"lanes"``
    (the slab layout needs multi-word chunks to exist at all).
    """
    if kernel == "lanes":
        return "lanes"
    if kernel == "words":
        return "words" if wordarray.supported(n) else "lanes"
    return "words" if n >= wordarray.SLAB_MIN_N else "lanes"


def coarse_prekeys(
    bits_list: Sequence[int], n: int, kernel: str = "auto"
) -> Tuple[List[tuple], List[tuple]]:
    """Instrumented entry point for the fused pre-key + weights kernel.

    Dispatches to :func:`repro.kernels.prekey.batch_prekeys` (flat
    lanes) or :func:`repro.kernels.wordarray.batch_prekeys` (slabs) via
    :func:`choose_layout`, plus ``kernels.*`` metrics when
    observability is on.  Callers gate on :func:`should_batch`; this
    function itself still falls back to scalar below the supported
    width.  Both layouts return scalar-identical ``(keys, weights)``.
    """
    layout = choose_layout(n, len(bits_list), kernel)
    impl = wordarray.batch_prekeys if layout == "words" else batch_prekeys
    if not _obs.enabled:
        return impl(bits_list, n)
    t0 = time.perf_counter()
    result = impl(bits_list, n)
    registry = _obs.registry
    registry.counter("kernels.prekey_calls").inc()
    registry.counter("kernels.prekey_lanes").inc(len(bits_list))
    registry.counter("kernels.prekey_seconds").inc(time.perf_counter() - t0)
    if layout == "words":
        registry.counter("kernels.prekey_slab_calls").inc()
    return result


def influence_vectors(bits_list: Sequence[int], n: int) -> List[tuple]:
    """Instrumented entry point for the batch influence kernel.

    Identical to :func:`repro.kernels.influence.batch_influence`, plus
    ``kernels.*`` metrics when observability is on.
    """
    if not _obs.enabled:
        return batch_influence(bits_list, n)
    t0 = time.perf_counter()
    result = batch_influence(bits_list, n)
    registry = _obs.registry
    registry.counter("kernels.influence_calls").inc()
    registry.counter("kernels.influence_lanes").inc(len(bits_list))
    registry.counter("kernels.influence_seconds").inc(time.perf_counter() - t0)
    return result
