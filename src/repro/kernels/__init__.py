"""Bit-parallel batch kernels: SIMD-on-bigints for the hot paths.

This package packs a batch of ``B`` truth tables (width ``2**n``) into
the lanes of one wide Python integer and replaces per-function Python
loops with a handful of big-integer operations that CPython executes in
C.  The layer is dependency-free (no numpy): the "vector unit" is the
arbitrary-precision integer itself.

Modules
-------
:mod:`repro.kernels.lanes`
    Lane layout, packing/extraction, replicated-mask builders.
:mod:`repro.kernels.popcount`
    Per-lane weights and the shared popcount butterfly that yields the
    total weight and all ``2n`` cofactor weights of every lane at once.
:mod:`repro.kernels.prekey`
    The fused pipeline producing the engine's coarse NPN pre-keys plus
    cofactor-weight vectors for a whole bucket in one pass.
:mod:`repro.kernels.transform`
    Lane-wise axis flips, input negation, Moebius and FPRM transforms.
:mod:`repro.kernels.influence`
    Per-lane influence vectors and sensitivity histograms for the
    engine's influence/sensitivity pre-key tiers.

Dispatch
--------
Call sites pick the implementation through :func:`should_batch`, driven
by a ``kernel`` mode string: ``"scalar"`` never batches, ``"batch"``
always batches where the kernel supports the width, and ``"auto"``
(default) batches once a group reaches :data:`KERNEL_MIN_BATCH` lanes —
below that the packing overhead eats the win.  The pre-key pipeline
needs byte-aligned lanes (``n >= 3``); narrower groups silently take
the scalar path, counted in ``kernels.scalar_fallbacks``.

When observability is enabled (:mod:`repro.obs.runtime`) the wrappers
record call counts, lane throughput and wall time under the
``kernels.*`` namespace.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from repro.kernels import influence, lanes, popcount, prekey, transform
from repro.kernels.influence import batch_influence, batch_sensitivity
from repro.kernels.lanes import pack_tables, unpack_tables
from repro.kernels.popcount import (
    AUTO_REDUCE_MAX_N,
    batch_weights,
    butterfly,
    packed_weights,
)
from repro.kernels.prekey import batch_cofactor_weights, batch_prekeys
from repro.kernels.transform import (
    batch_flip_axis,
    batch_fprm,
    batch_mobius,
    batch_negate_inputs,
    batch_output_complement,
)
from repro.obs import runtime as _obs

__all__ = [
    "AUTO_REDUCE_MAX_N",
    "KERNEL_MIN_BATCH",
    "KERNEL_MODES",
    "batch_cofactor_weights",
    "batch_flip_axis",
    "batch_fprm",
    "batch_influence",
    "batch_mobius",
    "batch_negate_inputs",
    "batch_output_complement",
    "batch_prekeys",
    "batch_sensitivity",
    "batch_weights",
    "butterfly",
    "coarse_prekeys",
    "influence",
    "influence_vectors",
    "lanes",
    "pack_tables",
    "packed_weights",
    "popcount",
    "prekey",
    "should_batch",
    "transform",
    "unpack_tables",
]

KERNEL_MODES = ("auto", "scalar", "batch")
"""Valid values of the ``kernel`` dispatch mode."""

KERNEL_MIN_BATCH = 8
"""``"auto"`` crossover: batch groups of at least this many distinct
functions.  The packed pipeline was never slower than scalar from 16
lanes up in BENCH_kernels.json; 8 leaves margin for the pack cost on
cache-cold lanes."""


def should_batch(n: int, count: int, kernel: str = "auto") -> bool:
    """Whether a group of ``count`` ``n``-variable functions should go
    through the packed pre-key pipeline under dispatch mode ``kernel``."""
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}"
        )
    if kernel == "scalar" or count < 2 or not prekey.supported(n):
        if kernel != "scalar" and count >= 2 and _obs.enabled:
            _obs.registry.counter("kernels.scalar_fallbacks").inc()
        return False
    if kernel == "batch":
        return True
    return count >= KERNEL_MIN_BATCH


def coarse_prekeys(
    bits_list: Sequence[int], n: int
) -> Tuple[List[tuple], List[tuple]]:
    """Instrumented entry point for the fused pre-key + weights kernel.

    Identical to :func:`repro.kernels.prekey.batch_prekeys`, plus
    ``kernels.*`` metrics when observability is on.  Callers gate on
    :func:`should_batch`; this function itself still falls back to
    scalar below the supported width.
    """
    if not _obs.enabled:
        return batch_prekeys(bits_list, n)
    t0 = time.perf_counter()
    result = batch_prekeys(bits_list, n)
    registry = _obs.registry
    registry.counter("kernels.prekey_calls").inc()
    registry.counter("kernels.prekey_lanes").inc(len(bits_list))
    registry.counter("kernels.prekey_seconds").inc(time.perf_counter() - t0)
    return result


def influence_vectors(bits_list: Sequence[int], n: int) -> List[tuple]:
    """Instrumented entry point for the batch influence kernel.

    Identical to :func:`repro.kernels.influence.batch_influence`, plus
    ``kernels.*`` metrics when observability is on.
    """
    if not _obs.enabled:
        return batch_influence(bits_list, n)
    t0 = time.perf_counter()
    result = batch_influence(bits_list, n)
    registry = _obs.registry
    registry.counter("kernels.influence_calls").inc()
    registry.counter("kernels.influence_lanes").inc(len(bits_list))
    registry.counter("kernels.influence_seconds").inc(time.perf_counter() - t0)
    return result
