"""Word-array (slab) batch kernels: the large-``n`` layout.

The flat lane layout of :mod:`repro.kernels.lanes` packs ``B`` tables
side by side and pays ``n + n*(n-1)/2`` butterfly rounds for the full
cofactor-weight set — quadratic in ``n`` — so its advantage over the
scalar loops decays from ~3x at ``n = 8`` to below 1x by ``n = 11``
(BENCH_kernels.json).  This module is the word-array twin used above
:data:`SLAB_MIN_N`: the batch is *transposed* into ``2**h`` **slabs**,
where slab ``s`` is one wide integer holding word ``s`` (a ``2**c``-bit
chunk, ``c = n - h``) of every table, one lane per table.

The layout splits each table's variables into three bands, exactly like
the word-array truth tables of MyskYko/ttopt (and the reference
single-table ops in :mod:`repro.utils.words`):

* axes 0..2 live inside a *byte*: one ``bytes.translate`` against a
  256-entry popcount (or transform) table processes all three at once,
  replacing the three narrowest — and most expensive per useful bit —
  butterfly rounds with a single C pass;
* axes 3..c-1 live inside a slab lane: masked-shift rounds, one per
  axis, over fields that start a byte wide (so every round from here on
  is cheap relative to the flat layout's 1-, 2- and 4-bit rounds);
* axes c..n-1 are the *slab index*: operations on them are list
  operations — a cofactor weight is a sum of slab vectors, an axis flip
  is a permutation of the slab list (free), a Moebius step is one
  unmasked XOR per slab pair.

The result is O(n) wide passes per batch for the full pre-key column
set instead of the flat layout's O(n^2), which is what restores the
>= 2x batch margin at ``n = 12..16``.

Cross-slab sums never overflow: the translate output holds values
<= 8 in 8-bit fields, and every summation either has headroom proved by
construction (field capacity ``2**16`` at the narrowest summed stride
vs at most ``2**(h+3)`` slabs-times-value) or is widened first in
groups of at most 16 slabs.

All kernels return results bit-identical to the scalar reference and to
the flat lane kernels; serialized forms never change (tables enter and
leave as plain packed bigints).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, List, Sequence, Tuple

from repro.kernels import lanes
from repro.utils import bitops

Pair = Tuple[int, int]

SLAB_MIN_N = 11
"""Dispatch floor: below this the flat lane layout wins (its rounds are
cheap at small widths and it avoids the transpose); from here up the
slab layout wins and the flat butterfly is already slower than scalar."""

SLAB_MAX_H = 6
"""Upper bound on ``log2`` slab count.  More slabs shorten the in-slab
rounds but grow the transpose cost linearly (``B * 2**h`` byte slices);
measured optimum is h in {3..6} over n in {11..16}."""

_BYTE_COUNT = bytes(bin(b).count("1") for b in range(256))
_BYTE_COUNT_AXIS = tuple(
    bytes(bin(b & m).count("1") for b in range(256))
    for m in (0x55, 0x33, 0x0F)
)
"""Per-byte popcount tables, plain and masked to the low-axis negative
cofactor halves (axis 0/1/2).  Built once at import: one translate pass
against these replaces the three narrowest butterfly rounds."""


def supported(n: int) -> bool:
    """Whether the slab pipeline covers ``n`` (needs byte-wide chunks
    after splitting off at most :data:`SLAB_MAX_H` slab axes)."""
    return SLAB_MIN_N <= n <= bitops.MAX_VARS


def slab_h(n: int) -> int:
    """Measured-optimal slab-count exponent for ``n``-variable batches.

    Keeps chunks near ``2**8``..``2**10`` bits: large enough that the
    per-slab Python overhead amortizes, small enough that many axes are
    list-level.  (BENCH_kernels.json carries the sweep.)
    """
    return max(3, min(SLAB_MAX_H, n - 8))


def pack_slabs(bits_list: Sequence[int], n: int, h: int) -> List[bytes]:
    """Transpose a batch into ``2**h`` slab buffers.

    Slab ``s`` holds chunk ``s`` (bytes ``[s*cb, (s+1)*cb)``, little
    endian) of every table, concatenated in batch order — i.e. lane
    ``k`` of slab ``s`` is word ``s`` of table ``k``.
    """
    tb = 1 << (n - 3)
    cb = tb >> h
    bufs = [b.to_bytes(tb, "little") for b in bits_list]
    # itemgetter(slice) keeps the B * 2**h chunk extraction entirely in
    # C; a per-buffer genexpr here costs more than the slicing itself.
    return [
        b"".join(map(itemgetter(slice(off, off + cb)), bufs))
        for off in range(0, tb, cb)
    ]


def unpack_slabs(slabs: Sequence[int], n: int, count: int, h: int) -> List[int]:
    """Inverse transpose: per-table integers from slab integers."""
    cb = (1 << (n - 3)) >> h
    imgs = [x.to_bytes(count * cb, "little") for x in slabs]
    fb = int.from_bytes
    return [
        fb(b"".join(map(itemgetter(slice(off, off + cb)), imgs)), "little")
        for off in (k * cb for k in range(count))
    ]


def _count_masks(c: int, total: int) -> List[int]:
    """Even-field masks for the in-slab count rounds (fields start one
    byte wide — the translate pass already merged axes 0..2)."""
    return [lanes.rep_mask(8 << r, total) for r in range(c - 3)]


def _grouped_sum(vals: Sequence[int], m0: int) -> Tuple[int, int]:
    """Sum 8-bit-field count vectors (field values <= 8) into 16-bit
    fields: plain big-int adds in carry-free groups of 31 (31 * 8 = 248
    never carries across a byte), then one widening round per group.

    Returns ``(sum16, even16)`` where ``even16`` is the summed round-0
    even slice — the seed of the axis-3 branch in the weight chains.
    """
    s16 = 0
    e16 = 0
    for k in range(0, len(vals), 31):
        p = sum(vals[k:k + 31])
        e = p & m0
        s16 += e + ((p >> 8) & m0)
        e16 += e
    return s16, e16


def _lane_weight_sum(
    slabs: Sequence[int], c: int, count: int, h: int
) -> int:
    """Per-lane weight vector summed over all slabs (``2**c``-bit
    fields, one total count per lane).

    The masked-add widening rounds are linear in the field values, so
    the translated byte counts are summed *across slabs first* (via
    :func:`_grouped_sum`) and a single chain widens the total — one add
    per slab plus one chain, instead of a full chain per slab."""
    total = count << c
    masks = _count_masks(c, total)
    tb = count << (c - 3)
    fb = int.from_bytes
    tab = _BYTE_COUNT
    y, _ = _grouped_sum(
        [fb(x.to_bytes(tb, "little").translate(tab), "little") for x in slabs],
        masks[0],
    )
    for r in range(1, len(masks)):
        w = 8 << r
        m = masks[r]
        y = (y & m) + ((y >> w) & m)
    return y


def batch_weights(bits_list: Sequence[int], n: int) -> List[int]:
    """Per-table on-set weights through the slab pipeline.

    Exists for completeness and differential testing; a bare
    ``int.bit_count`` per table is faster at every width (see
    :data:`repro.kernels.popcount.AUTO_REDUCE_MAX_N`) and remains what
    dispatch picks for standalone weights.
    """
    return [b.bit_count() for b in bits_list]


def _slab_columns(
    bits_list: Sequence[int], n: int, count: int, h: int, want_mins: bool = True
):
    """The slab twin of :func:`repro.kernels.prekey._lane_columns`:
    per-table total weights, per-axis negative-cofactor-weight columns
    and per-axis ``min(ncw, pcw)`` columns, from one pass.

    Weight flow: one popcount translate per slab collapses axes 0..2
    into byte counts (plus three masked translates seeding the
    axis-0/1/2 branches), then everything is summed *across slabs
    before widening* — the masked-add rounds are linear in the field
    values, so chain(sum) == sum(chains), and the carry-free group adds
    of :func:`_grouped_sum` cost one pass per slab where a per-slab
    chain would cost ``4 * (c - 3)``.  The total-weight chain's even
    slices are then exactly the slab-summed in-slab branches, the high
    axes need one half-batch grouped sum each, and no per-slab chain
    ever runs.
    """
    c = n - h
    size = 1 << n
    half = size >> 1
    nslabs = 1 << h
    total = count << c
    cb = 1 << (c - 3)
    fb = int.from_bytes
    masks = _count_masks(c, total)
    nrounds = len(masks)
    m0 = masks[0]

    t_all = _BYTE_COUNT
    t_axis = _BYTE_COUNT_AXIS
    ty: List[int] = []
    low: List[List[int]] = [[], [], []]
    for sbuf in pack_slabs(bits_list, n, h):
        ty.append(fb(sbuf.translate(t_all), "little"))
        low[0].append(fb(sbuf.translate(t_axis[0]), "little"))
        low[1].append(fb(sbuf.translate(t_axis[1]), "little"))
        low[2].append(fb(sbuf.translate(t_axis[2]), "little"))

    def widen(z: int, r0: int) -> int:
        for r in range(r0, nrounds):
            w = 8 << r
            m = masks[r]
            z = (z & m) + ((z >> w) & m)
        return z

    # Total-weight chain over the slab-summed byte counts, capturing
    # the even slice at every round: slice r of the summed chain equals
    # the sum of the per-slab slices, i.e. the in-slab ncw column for
    # axis 3 + r already reduced over all high axes.
    y, e0 = _grouped_sum(ty, m0)
    branch_f: List[int] = [e0]
    for r in range(1, nrounds):
        w = 8 << r
        m = masks[r]
        t = y & m
        branch_f.append(t)
        y = t + ((y >> w) & m)
    S = y

    ncw_f: List[int] = []
    for zs in low:
        z, _ = _grouped_sum(zs, m0)
        ncw_f.append(widen(z, 1))
    for r, z in enumerate(branch_f):
        ncw_f.append(widen(z, r + 1))
    for j in range(h):
        bit = 1 << j
        z, _ = _grouped_sum(
            [ty[s] for s in range(nslabs) if not s & bit], m0
        )
        ncw_f.append(widen(z, 1))

    # SWAR min(ncw, pcw), same borrow trick as the flat pipeline: the
    # probe bit sits at position n of each 2**c-bit field (2**c > n for
    # every supported width).
    min_cols = None
    if want_mins:
        P = lanes.rep_bit(n, 1 << c, total)
        mins_f = []
        for E in ncw_f:
            pcw = S - E
            ge = ((E | P) - pcw) & P
            bf = ge - (ge >> n)
            mins_f.append(E ^ ((E ^ pcw) & bf))
        min_cols = [lanes.extract_lanes(x, cb, count, half) for x in mins_f]
    ncw_cols = [lanes.extract_lanes(x, cb, count, half) for x in ncw_f]
    w = lanes.extract_lanes(S, cb, count, size)
    return w, ncw_cols, min_cols


def batch_prekeys(
    bits_list: Sequence[int], n: int
) -> Tuple[List[tuple], List[Tuple[Pair, ...]]]:
    """Coarse pre-keys and cofactor-weight vectors, slab layout.

    Bit-identical to :func:`repro.kernels.prekey.batch_prekeys` (and to
    the scalar ``coarse_prekey``); only the internal layout differs.
    """
    count = len(bits_list)
    if not count:
        return [], []
    if not supported(n):
        from repro.kernels import prekey as _prekey

        return _prekey.batch_prekeys(bits_list, n)
    from repro.kernels.prekey import finish_prekeys

    cols = _slab_columns(bits_list, n, count, slab_h(n))
    return finish_prekeys(cols, bits_list, n)


def batch_cofactor_weights(
    bits_list: Sequence[int], n: int
) -> List[Tuple[Pair, ...]]:
    """Per-table ``((ncw_i, pcw_i), ...)`` vectors, slab layout."""
    count = len(bits_list)
    if not count:
        return []
    if not supported(n):
        from repro.kernels import prekey as _prekey

        return _prekey.batch_cofactor_weights(bits_list, n)
    w, ncw_cols, _ = _slab_columns(
        bits_list, n, count, slab_h(n), want_mins=False
    )
    return [
        tuple((m, fw - m) for m in nrow)
        for fw, nrow in zip(w, zip(*ncw_cols))
    ]


# ---------------------------------------------------------------------------
# FPRM / Moebius


_fprm_byte_maps: Dict[int, bytes] = {}


def _fprm_byte_map(neg3: int) -> bytes:
    """256-entry table: flip the negative low axes (``neg3`` bits 0..2),
    then the Moebius rounds for axes 0..2 — the whole low band of the
    FPRM transform as one byte permutation-free translate."""
    tab = _fprm_byte_maps.get(neg3)
    if tab is None:
        out = []
        lowm = (0x55, 0x33, 0x0F)
        for b in range(256):
            x = b
            for i in range(3):
                if (neg3 >> i) & 1:
                    w = 1 << i
                    m = lowm[i]
                    x = ((x & m) << w) | ((x >> w) & m)
            for i in range(3):
                x ^= (x & lowm[i]) << (1 << i)
                x &= 0xFF
            out.append(x)
        tab = _fprm_byte_maps[neg3] = bytes(out)
    return tab


def _fprm_slabs(
    sbufs: List[bytes], n: int, count: int, h: int, polarity: int
) -> List[int]:
    """FPRM over packed slab buffers; returns transformed slab ints.

    High-axis polarity flips are a slab-index permutation (zero bit
    work), the low band is one translate, mid-axis flips fuse into
    their Moebius round (``hi | ((lo ^ hi) << w)``), and the high-axis
    Moebius steps are unmasked slab-pair XORs.
    """
    c = n - h
    nslabs = 1 << h
    total = count << c
    fb = int.from_bytes
    neg = ~polarity & ((1 << n) - 1)
    hm = neg >> c
    if hm:
        sbufs = [sbufs[s ^ hm] for s in range(nslabs)]
    tmap = _fprm_byte_map(neg & 7)
    ops = [
        ((neg >> i) & 1, 1 << i, lanes.rep_axis(c, i, total))
        for i in range(3, c)
    ]
    slabs = []
    for sbuf in sbufs:
        x = fb(sbuf.translate(tmap), "little")
        for f, w, m in ops:
            if f:
                lo = x & m
                hi = (x >> w) & m
                x = hi | ((lo ^ hi) << w)
            else:
                x ^= (x & m) << w
        slabs.append(x)
    for j in range(h):
        bit = 1 << j
        for s in range(nslabs):
            if s & bit:
                slabs[s] ^= slabs[s ^ bit]
    return slabs


def batch_fprm(bits_list: Sequence[int], n: int, polarity: int) -> List[int]:
    """Slab-layout FPRM coefficient vectors for a whole batch.

    Per-table equal to ``fprm_coefficients(bits, n, polarity)``.  Falls
    back to the flat lane kernel below the supported width.
    """
    if not 0 <= polarity < (1 << n):
        raise ValueError("polarity vector out of range")
    count = len(bits_list)
    if not count:
        return []
    if not supported(n):
        from repro.kernels import transform as _transform

        return _transform.batch_fprm(bits_list, n, polarity)
    h = slab_h(n)
    slabs = _fprm_slabs(pack_slabs(bits_list, n, h), n, count, h, polarity)
    return unpack_slabs(slabs, n, count, h)


def batch_mobius(bits_list: Sequence[int], n: int) -> List[int]:
    """Slab-layout Moebius transform (FPRM at the all-positive
    polarity)."""
    return batch_fprm(bits_list, n, (1 << n) - 1)


def fprm_ladder_weights(
    bits_list: Sequence[int], n: int, polarities: Sequence[int]
) -> List[List[int]]:
    """GRM spectrum weights for every table under a *ladder* of
    polarities: ``out[p][k] == fprm_coefficients(bits_list[k], n,
    polarities[p]).bit_count()``.

    This is the paper's polarity-sweep workload (compare GRM weight
    vectors across polarities) and where the slab layout is strongest:
    the batch is packed and fully transformed once, then each further
    polarity is an *incremental* update — toggling the polarity of axis
    ``i`` maps the coefficient vector by one fold ``c ^= (c >> 2**i)
    masked to even fields`` (for in-slab axes) or one unmasked XOR per
    slab pair (for high axes, at half traffic and no mask), never a
    fresh transform.  Per-lane weights come from the popcount translate
    chain after each step.
    """
    count = len(bits_list)
    if not polarities:
        return []
    if not count:
        return [[] for _ in polarities]
    if not supported(n):
        from repro.grm.transform import fprm_coefficients

        return [
            [fprm_coefficients(b, n, p).bit_count() for b in bits_list]
            for p in polarities
        ]
    h = slab_h(n)
    c = n - h
    nslabs = 1 << h
    total = count << c
    size = 1 << n
    slabs = _fprm_slabs(
        pack_slabs(bits_list, n, h), n, count, h, polarities[0]
    )
    out = []
    cur = polarities[0]
    cb = 1 << (c - 3)
    for p in polarities:
        for i in bitops.iter_bits(cur ^ p):
            if i >= c:
                bit = 1 << (i - c)
                for s in range(nslabs):
                    if not s & bit:
                        slabs[s] ^= slabs[s | bit]
            else:
                w = 1 << i
                m = lanes.rep_axis(c, i, total)
                slabs = [x ^ ((x >> w) & m) for x in slabs]
        cur = p
        S = _lane_weight_sum(slabs, c, count, h)
        out.append(list(lanes.extract_lanes(S, cb, count, size)))
    return out
