"""Fused batch pre-keys: the engine's coarse NPN pre-key for a whole
bucket in one pass over the packed batch.

The scalar :func:`repro.engine.prekey.coarse_prekey` builds, per
function, the sorted min/max cofactor-weight-pair profile and takes the
lexicographic minimum of the profile and its negation image.  The batch
kernel reproduces those tuples bit-for-bit from three observations:

* ``ncw_i + pcw_i = |f|`` for every variable, so each (min, max)-ordered
  pair is determined by ``m_i = min(ncw_i, pcw_i)`` and the function
  weight ``fw`` alone, and sorting pairs lexicographically is the same
  as sorting the ``m_i``.
* ``min(profile, profile_neg)`` resolves *globally* on ``fw``: for
  ``fw < 2**(n-1)`` the plain profile wins, for ``fw > 2**(n-1)`` the
  negation image wins, and at ``fw == 2**(n-1)`` the two are equal
  element-wise (each pair and its image are both ``(m, half - m)``).
  So the reported weight is ``wmin = min(fw, 2**n - fw)`` and every
  output pair is a pure function of ``(m_i, fw)``.
* A variable is outside the support only if its pair is the equal pair
  ``(fw/2, fw/2)`` — so the (rare) exact cofactor comparison runs only
  for variables whose extracted min hits ``fw // 2`` on an even ``fw``.

The per-lane mins come out of the shared butterfly with a SWAR
compare-and-select (no per-variable popcounts), and the final tuples are
materialized through lazy *pair-row tables*: ``pair_row(size, fw)[m] ==
(m, fw - m)``, so one C-level ``map(row.__getitem__, mins)`` per
function builds the whole profile — and equal pairs are shared objects
across the batch instead of fresh tuples.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.kernels import lanes
from repro.kernels.popcount import butterfly
from repro.utils import bitops

Pair = Tuple[int, int]

PAIR_ROW_MAX_SIZE = 2048
"""Largest table size (``2**n``) for which pair rows are materialized.
A row costs O(size) tuples and is keyed by ``(size, fw)``; at small
``n`` rows are few and heavily shared across lanes, but from ``n ~ 12``
up nearly every lane has a distinct weight, so building rows would cost
O(B * 2**n) tuples per cold batch and pin them in the cache forever.
Above this bound the finishing loop builds each lane's n pairs
directly."""

_pair_rows: Dict[Tuple[int, int], List[Pair]] = {}
_npair_rows: Dict[Tuple[int, int], List[Pair]] = {}


def pair_row(size: int, fw: int) -> List[Pair]:
    """``pair_row(size, fw)[m] == (m, fw - m)`` for every possible min
    ``m`` of a weight-``fw`` function on ``size`` minterms."""
    key = (size, fw)
    r = _pair_rows.get(key)
    if r is None:
        top = min(fw, size >> 1)
        r = _pair_rows[key] = [(m, fw - m) for m in range(top + 1)]
    return r


def npair_row(size: int, fw: int) -> List[Pair]:
    """The negation-image row for ``fw > size // 2``:
    ``npair_row(size, fw)[m] == (m + half - fw, half - m)``, i.e. the
    min/max pair of the complement function indexed by the min of the
    original."""
    key = (size, fw)
    r = _npair_rows.get(key)
    if r is None:
        half = size >> 1
        d = half - fw
        r = _npair_rows[key] = [(m + d, half - m) for m in range(min(fw, half) + 1)]
    return r


def _lane_columns(bits_list: Sequence[int], n: int, count: int):
    """Pack, reduce, SWAR-min and extract: the shared front half of the
    weight and pre-key kernels.

    Returns ``(w, ncw_cols, min_cols)`` — per-lane total weights, one
    extracted column per variable of negative cofactor weights, and one
    per variable of ``min(ncw, pcw)``.
    """
    size = 1 << n
    half = size >> 1
    total_bits = count << n
    nbytes = lanes.lane_bytes(n)
    packed = lanes.pack_tables(bits_list, n)
    S, ncw_f = butterfly(packed, n, count)
    # SWAR min(ncw, pcw): with pcw = S - E, set a probe bit P above each
    # lane's count field, subtract, and smear the surviving borrow into a
    # field mask bf that selects pcw exactly where pcw < ncw is false...
    # i.e. ge = "ncw >= pcw" per lane; blend E and pcw through bf.
    P = lanes.rep_bit(n, size, total_bits)
    mins_f = []
    for E in ncw_f:
        pcw = S - E
        ge = ((E | P) - pcw) & P
        bf = ge - (ge >> n)
        mins_f.append(E ^ ((E ^ pcw) & bf))
    min_cols = [lanes.extract_lanes(x, nbytes, count, half) for x in mins_f]
    ncw_cols = [lanes.extract_lanes(x, nbytes, count, half) for x in ncw_f]
    w = lanes.extract_lanes(S, nbytes, count, size)
    return w, ncw_cols, min_cols


def batch_cofactor_weights(
    bits_list: Sequence[int], n: int
) -> List[Tuple[Pair, ...]]:
    """``(ncw_i, pcw_i)`` for every variable of every table in the batch.

    Matches ``tuple((half_weight(b, n, i, 0), half_weight(b, n, i, 1))
    for i in range(n))`` per table.  Falls back to that scalar loop for
    ``n < 3`` (sub-byte lanes) — see :func:`supported`.
    """
    count = len(bits_list)
    if not count:
        return []
    if not supported(n):
        masks = bitops.axis_masks(n)
        return [
            tuple(
                ((b & m).bit_count(), ((b >> (1 << i)) & m).bit_count())
                for i, m in enumerate(masks)
            )
            for b in bits_list
        ]
    size = 1 << n
    w, ncw_cols, _ = _lane_columns(bits_list, n, count)
    if size > PAIR_ROW_MAX_SIZE:
        return [
            tuple((m, fw - m) for m in nrow)
            for fw, nrow in zip(w, zip(*ncw_cols))
        ]
    out = []
    for fw, nrow in zip(w, zip(*ncw_cols)):
        pf = pair_row(size, fw)
        out.append(tuple(map(pf.__getitem__, nrow)))
    return out


def finish_prekeys(
    cols, bits_list: Sequence[int], n: int
) -> Tuple[List[tuple], List[Tuple[Pair, ...]]]:
    """Shared back half of the pre-key kernels: turn the extracted
    ``(w, ncw_cols, min_cols)`` columns into the scalar-identical
    ``(keys, weights)`` lists.

    Both layouts (flat lanes and the slab pipeline in
    :mod:`repro.kernels.wordarray`) produce the same columns and end
    here.  Small tables go through the shared pair-row tables; above
    :data:`PAIR_ROW_MAX_SIZE` each lane's pairs are built directly
    (see the constant's docstring for why).
    """
    w, ncw_cols, min_cols = cols
    size = 1 << n
    half = size >> 1
    use_rows = size <= PAIR_ROW_MAX_SIZE
    keys: List[tuple] = []
    weights: List[Tuple[Pair, ...]] = []
    kap = keys.append
    wap = weights.append
    axis_masks = bitops.axis_masks(n)
    for fw, row, nrow, bits in zip(w, zip(*min_cols), zip(*ncw_cols), bits_list):
        pf = pair_row(size, fw) if use_rows else None
        if use_rows:
            wap(tuple(map(pf.__getitem__, nrow)))
        else:
            wap(tuple((m, fw - m) for m in nrow))
        hf = fw >> 1
        if (fw & 1) or hf not in row:
            support = n
        else:
            support = n
            for i, m in enumerate(row):
                if m == hf:
                    span = 1 << i
                    am = axis_masks[i]
                    if (bits & am) == ((bits >> span) & am):
                        support -= 1
        srow = sorted(row)
        if fw <= half:
            if use_rows:
                kap((n, support, fw, tuple(map(pf.__getitem__, srow))))
            else:
                kap((n, support, fw, tuple((m, fw - m) for m in srow)))
        else:
            if use_rows:
                kap(
                    (
                        n,
                        support,
                        size - fw,
                        tuple(map(npair_row(size, fw).__getitem__, srow)),
                    )
                )
            else:
                d = half - fw
                kap(
                    (
                        n,
                        support,
                        size - fw,
                        tuple((m + d, half - m) for m in srow),
                    )
                )
    return keys, weights


def batch_prekeys(
    bits_list: Sequence[int], n: int
) -> Tuple[List[tuple], List[Tuple[Pair, ...]]]:
    """Coarse pre-keys *and* cofactor-weight vectors for a whole batch.

    Returns ``(keys, weights)`` where ``keys[k]`` equals
    ``coarse_prekey(TruthTable(n, bits_list[k]))`` bit-for-bit and
    ``weights[k]`` is the ``((ncw, pcw), ...)`` vector (the two share
    one butterfly, which is where the batch speedup comes from).
    Scalar fallback below ``n = 3``.
    """
    count = len(bits_list)
    if not count:
        return [], []
    if not supported(n):
        return _scalar_prekeys(bits_list, n)
    return finish_prekeys(_lane_columns(bits_list, n, count), bits_list, n)


def supported(n: int) -> bool:
    """Whether the packed pre-key/weight pipeline covers ``n``.

    The byte-strided extraction needs lanes of at least one byte
    (``n >= 3``); above :data:`repro.utils.bitops.MAX_VARS` tables are
    rejected everywhere anyway.
    """
    return 3 <= n <= bitops.MAX_VARS


def _scalar_prekeys(bits_list, n):
    from repro.engine.prekey import coarse_prekey
    from repro.boolfunc.truthtable import TruthTable

    keys = [coarse_prekey(TruthTable(n, b)) for b in bits_list]
    return keys, batch_cofactor_weights(bits_list, n)
