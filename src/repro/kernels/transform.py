"""Batch structural transforms: axis flips, input negation, the GF(2)
Moebius butterfly and the polarity-aware FPRM transform, all lane-wise.

Every transform here is the packed-batch twin of a scalar routine in
:mod:`repro.utils.bitops` / :mod:`repro.grm.transform` and returns
bit-identical per-lane results.  The per-axis masks replicate the
scalar ``axis_mask`` pattern into every lane (the pattern's period
``2**(i+1)`` divides the lane stride, so the replicated mask is exact),
which keeps all shifts lane-local: bits that a shift drags across a
lane boundary are masked away in the same expression.

Unlike the pre-key pipeline these kernels work for *every* ``n``:
sub-byte tables (``n < 3``) simply live in the low bits of a one-byte
lane, and the masked algebra never disturbs the slack bits.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.kernels import lanes
from repro.utils import bitops


def _flip_axis_packed(x: int, n: int, i: int, total_bits: int) -> int:
    w = 1 << i
    m = lanes.rep_axis(n, i, total_bits)
    return ((x & m) << w) | ((x >> w) & m)


def batch_flip_axis(bits_list: Sequence[int], n: int, i: int) -> List[int]:
    """Per-lane :func:`repro.utils.bitops.flip_axis`."""
    count = len(bits_list)
    if not count:
        return []
    total_bits = count * lanes.lane_bits(n)
    x = _flip_axis_packed(lanes.pack_tables(bits_list, n), n, i, total_bits)
    return lanes.unpack_tables(x, n, count)


def batch_negate_inputs(
    bits_list: Sequence[int], n: int, neg_mask: int
) -> List[int]:
    """Per-lane :func:`repro.utils.bitops.negate_inputs`."""
    count = len(bits_list)
    if not count:
        return []
    total_bits = count * lanes.lane_bits(n)
    x = lanes.pack_tables(bits_list, n)
    for i in bitops.iter_bits(neg_mask):
        x = _flip_axis_packed(x, n, i, total_bits)
    return lanes.unpack_tables(x, n, count)


def batch_output_complement(bits_list: Sequence[int], n: int) -> List[int]:
    """Per-lane ``bits ^ table_mask(n)`` (complement every function)."""
    count = len(bits_list)
    if not count:
        return []
    total_bits = count * lanes.lane_bits(n)
    x = lanes.pack_tables(bits_list, n)
    x ^= lanes.rep_const(bitops.table_mask(n), lanes.lane_bits(n), total_bits)
    return lanes.unpack_tables(x, n, count)


def _mobius_packed(x: int, n: int, total_bits: int) -> int:
    for i in range(n):
        x ^= (x & lanes.rep_axis(n, i, total_bits)) << (1 << i)
    return x


def batch_mobius(bits_list: Sequence[int], n: int) -> List[int]:
    """Per-lane :func:`repro.utils.bitops.mobius` (an involution)."""
    count = len(bits_list)
    if not count:
        return []
    total_bits = count * lanes.lane_bits(n)
    x = _mobius_packed(lanes.pack_tables(bits_list, n), n, total_bits)
    return lanes.unpack_tables(x, n, count)


def batch_fprm(bits_list: Sequence[int], n: int, polarity: int) -> List[int]:
    """GRM coefficient vectors of a whole batch under one polarity.

    Per-lane equal to
    :func:`repro.grm.transform.fprm_coefficients(bits, n, polarity)`:
    flip every negative-polarity axis, then run the Moebius butterfly —
    both stages on the packed batch.
    """
    if not 0 <= polarity < (1 << n):
        raise ValueError("polarity vector out of range")
    count = len(bits_list)
    if not count:
        return []
    total_bits = count * lanes.lane_bits(n)
    x = lanes.pack_tables(bits_list, n)
    neg = ~polarity & ((1 << n) - 1)
    for i in bitops.iter_bits(neg):
        x = _flip_axis_packed(x, n, i, total_bits)
    x = _mobius_packed(x, n, total_bits)
    return lanes.unpack_tables(x, n, count)
