"""Comparison baselines: exhaustive NPN, cofactor-signature matching,
spectral-signature matching, conventional pairwise symmetry checking."""

from repro.baselines import exhaustive, naive_symmetry, signature_matcher, spectral

__all__ = ["exhaustive", "naive_symmetry", "signature_matcher", "spectral"]
