"""Cofactor-signature matching baseline (Mohnke/Malik style).

The contemporaries the paper compares against ([3], [6], [7], [10])
match with *signatures only*: per-variable statistics that are invariant
under permutation and phase, used to pin down the input correspondence,
with brute-force search over whatever the signatures cannot separate.
This baseline uses the classic cofactor-weight signature hierarchy
(first-order weights, then iterated second-order cross weights), then
permutes the residual ambiguity groups exhaustively.  No GRM forms, no
symmetry machinery — exactly the gap the paper's method fills.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.boolfunc.transform import NpnTransform
from repro.boolfunc.truthtable import TruthTable
from repro.core.polarity import phase_candidates
from repro.utils.partition import Partition


@dataclass
class SignatureMatchStats:
    """Work counters for one signature-baseline match call."""

    permutations_tried: int = 0
    phase_checks: int = 0


def _weight_key(f: TruthTable, v: int) -> Tuple[int, int]:
    a = f.cofactor_weight(v, 0)
    b = f.cofactor_weight(v, 1)
    return (a, b) if a <= b else (b, a)


def _cross_key(f: TruthTable, v: int, blocks: List[Tuple[int, ...]]) -> Tuple:
    """Second-order signature: multiset of two-variable cofactor weights
    toward every current block (phase-invariant by sorting the quads)."""
    key = []
    for block in blocks:
        entries = []
        for w in block:
            if w == v:
                continue
            quad = sorted(
                f.cofactor(v, a).cofactor(w, b).count()
                for a in (0, 1)
                for b in (0, 1)
            )
            entries.append(tuple(quad))
        key.append(tuple(sorted(entries)))
    return tuple(key)


def _signature_partition(f: TruthTable, max_rounds: int = 4) -> Partition:
    part = Partition(f.n)
    part.refine(lambda v: _weight_key(f, v))
    for _ in range(max_rounds):
        blocks = [tuple(b) for b in part.blocks]
        if not part.refine(lambda v: _cross_key(f, v, blocks)):
            break
    return part


def np_match(
    ff: TruthTable,
    gg: TruthTable,
    stats: Optional[SignatureMatchStats] = None,
    max_block_permutations: int = 362880,
) -> Optional[NpnTransform]:
    """Signature-guided np matching with exhaustive residual search."""
    if stats is None:
        stats = SignatureMatchStats()
    n = ff.n
    if gg.n != n or ff.count() != gg.count():
        return None
    part_f = _signature_partition(ff)
    part_g = _signature_partition(gg)
    if part_f.block_sizes() != part_g.block_sizes():
        return None

    total = 1
    for size in part_f.block_sizes():
        for k in range(2, size + 1):
            total *= k
        if total > max_block_permutations:
            raise RuntimeError("signature baseline: residual search too large")

    block_perms = [
        list(itertools.permutations(block_g))
        for block_g in part_g.blocks
    ]
    for choice in itertools.product(*block_perms):
        stats.permutations_tried += 1
        perm = [0] * n
        for block_f, arrangement in zip(part_f.blocks, choice):
            for v, w in zip(block_f, arrangement):
                perm[v] = w
        # Phases: per variable, derive from the (possibly swapped) weight
        # pair; ambiguous (balanced) variables try both phases.
        ambiguous: List[int] = []
        neg = 0
        feasible = True
        for v in range(n):
            w = perm[v]
            f0 = ff.cofactor_weight(v, 0)
            f1 = ff.cofactor_weight(v, 1)
            g0 = gg.cofactor_weight(w, 0)
            g1 = gg.cofactor_weight(w, 1)
            if f0 == f1:
                ambiguous.append(v)
            elif (f0, f1) == (g0, g1):
                pass
            elif (f0, f1) == (g1, g0):
                neg |= 1 << v
            else:
                feasible = False
                break
        if not feasible:
            continue
        for bits in range(1 << len(ambiguous)):
            stats.phase_checks += 1
            mask = neg
            for k, v in enumerate(ambiguous):
                if (bits >> k) & 1:
                    mask |= 1 << v
            candidate = NpnTransform(tuple(perm), mask, False)
            if candidate.apply(ff) == gg:
                return candidate
    return None


def match(
    f: TruthTable,
    g: TruthTable,
    stats: Optional[SignatureMatchStats] = None,
    allow_output_neg: bool = True,
) -> Optional[NpnTransform]:
    """Full npn matching with the signature baseline."""
    if f.n != g.n:
        return None
    if f.n == 0:
        if f.bits == g.bits:
            return NpnTransform(())
        return NpnTransform((), 0, True) if allow_output_neg else None
    f_phases = phase_candidates(f) if allow_output_neg else [(f, False)]
    g_phases = phase_candidates(g) if allow_output_neg else [(g, False)]
    for ff, fo in f_phases:
        for gg, go in g_phases:
            if ff.count() != gg.count():
                continue
            t0 = np_match(ff, gg, stats)
            if t0 is not None:
                result = NpnTransform(t0.perm, t0.input_neg, fo ^ go)
                if result.apply(f) == g:
                    return result
    return None
