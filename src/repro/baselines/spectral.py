"""Spectral-signature matching baseline.

Walsh-spectrum signatures were the other contemporary route to Boolean
matching.  This baseline partitions variables by their npn-invariant
spectral keys (orders 1-2 coefficient magnitudes), then searches the
residual permutations and phases exhaustively — structurally parallel
to :mod:`repro.baselines.signature_matcher` but with spectral rather
than cofactor-weight signatures, so the benchmarks can compare all
three signature families against the paper's GRM method.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.boolfunc.transform import NpnTransform
from repro.boolfunc.truthtable import TruthTable
from repro.boolfunc.walsh import spectrum_by_order, variable_spectral_key
from repro.core.polarity import phase_candidates
from repro.utils.partition import Partition


def _partition(f: TruthTable) -> Partition:
    part = Partition(f.n)
    part.refine(lambda v: variable_spectral_key(f, v))
    return part


def np_match(
    ff: TruthTable,
    gg: TruthTable,
    max_block_permutations: int = 40320,
) -> Optional[NpnTransform]:
    """Spectrum-guided np matching with exhaustive residual search."""
    n = ff.n
    if gg.n != n:
        return None
    if spectrum_by_order(ff) != spectrum_by_order(gg):
        return None
    part_f = _partition(ff)
    part_g = _partition(gg)
    if part_f.block_sizes() != part_g.block_sizes():
        return None

    total = 1
    for size in part_f.block_sizes():
        for k in range(2, size + 1):
            total *= k
        if total > max_block_permutations:
            raise RuntimeError("spectral baseline: residual search too large")

    from repro.boolfunc.walsh import walsh_spectrum

    spec_f = walsh_spectrum(ff)
    spec_g = walsh_spectrum(gg)
    block_perms = [list(itertools.permutations(block)) for block in part_g.blocks]
    for choice in itertools.product(*block_perms):
        perm: List[int] = [0] * n
        for block_f, arrangement in zip(part_f.blocks, choice):
            for v, w in zip(block_f, arrangement):
                perm[v] = w
        # Phases from first-order coefficient signs; sign-zero
        # coefficients leave the phase free.
        free: List[int] = []
        neg = 0
        for v in range(n):
            cf = spec_f[1 << v]
            cg = spec_g[1 << perm[v]]
            if cf == 0:
                free.append(v)
            elif cf == -cg:
                neg |= 1 << v
            elif cf != cg:
                break
        else:
            if 1 << len(free) > 4096:
                raise RuntimeError("spectral baseline: too many free phases")
            for bits in range(1 << len(free)):
                mask = neg
                for k, v in enumerate(free):
                    if (bits >> k) & 1:
                        mask |= 1 << v
                candidate = NpnTransform(tuple(perm), mask, False)
                if candidate.apply(ff) == gg:
                    return candidate
    return None


def match(
    f: TruthTable, g: TruthTable, allow_output_neg: bool = True
) -> Optional[NpnTransform]:
    """Full npn matching with the spectral baseline."""
    if f.n != g.n:
        return None
    if f.n == 0:
        if f.bits == g.bits:
            return NpnTransform(())
        return NpnTransform((), 0, True) if allow_output_neg else None
    f_phases = phase_candidates(f) if allow_output_neg else [(f, False)]
    g_phases = phase_candidates(g) if allow_output_neg else [(g, False)]
    for ff, fo in f_phases:
        for gg, go in g_phases:
            if ff.count() != gg.count():
                continue
            t0 = np_match(ff, gg)
            if t0 is not None:
                result = NpnTransform(t0.perm, t0.input_neg, fo ^ go)
                if result.apply(f) == g:
                    return result
    return None
