"""Conventional pairwise symmetry checking (the paper's implicit baseline).

Before the GRM method, symmetry detection compared two-variable
cofactors pair by pair and type by type ("only one type of symmetry is
checked and the method of checking is very inefficient", Section 1).
This module is that conventional checker, implemented both on truth
tables and on BDDs, used as the comparison point for the symmetry
benchmarks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.bdd.manager import BddManager
from repro.boolfunc.truthtable import TruthTable
from repro.core.symmetry import E, NE, SKEW_E, SKEW_NE


def all_pair_symmetries_naive(f: TruthTable) -> Dict[Tuple[int, int], FrozenSet[str]]:
    """Check all four types for every pair with fresh cofactor computations.

    Deliberately recomputes each cofactor per (pair, type) query the way
    a per-request checker would — 4 checks × C(n,2) pairs, each building
    four cofactors.
    """
    n = f.n
    result: Dict[Tuple[int, int], FrozenSet[str]] = {}
    for i in range(n):
        for j in range(i + 1, n):
            kinds = set()
            if f.cofactor(i, 0).cofactor(j, 1) == f.cofactor(i, 1).cofactor(j, 0):
                kinds.add(NE)
            if f.cofactor(i, 0).cofactor(j, 0) == f.cofactor(i, 1).cofactor(j, 1):
                kinds.add(E)
            if f.cofactor(i, 0).cofactor(j, 1) == ~f.cofactor(i, 1).cofactor(j, 0):
                kinds.add(SKEW_NE)
            if f.cofactor(i, 0).cofactor(j, 0) == ~f.cofactor(i, 1).cofactor(j, 1):
                kinds.add(SKEW_E)
            result[(i, j)] = frozenset(kinds)
    return result


def all_pair_symmetries_bdd(f: TruthTable) -> Dict[Tuple[int, int], FrozenSet[str]]:
    """The same pairwise check carried out on BDD cofactors."""
    mgr = BddManager(f.n)
    node = mgr.from_truthtable(f)
    result: Dict[Tuple[int, int], FrozenSet[str]] = {}
    for i in range(f.n):
        for j in range(i + 1, f.n):
            c01 = mgr.cofactor(mgr.cofactor(node, i, 0), j, 1)
            c10 = mgr.cofactor(mgr.cofactor(node, i, 1), j, 0)
            c00 = mgr.cofactor(mgr.cofactor(node, i, 0), j, 0)
            c11 = mgr.cofactor(mgr.cofactor(node, i, 1), j, 1)
            kinds = set()
            if c01 == c10:
                kinds.add(NE)
            if c00 == c11:
                kinds.add(E)
            if c01 == mgr.apply_not(c10):
                kinds.add(SKEW_NE)
            if c00 == mgr.apply_not(c11):
                kinds.add(SKEW_E)
            result[(i, j)] = frozenset(kinds)
    return result


def is_totally_symmetric_naive(f: TruthTable) -> bool:
    """Total symmetry by exhaustive pairwise positive-symmetry checks."""
    pairs = all_pair_symmetries_naive(f)
    return all(NE in kinds or E in kinds for kinds in pairs.values())
