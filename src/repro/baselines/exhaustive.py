"""Exhaustive NPN canonicalization baseline.

The brute-force comparison point: canonicalize a function by applying
every transform in the NPN group and keeping the lexicographically
smallest truth table.  Exact for any ``n`` but costs ``n! * 2**(n+1)``
transform applications, so it is only practical for small ``n`` — which
is precisely the gap the paper's GRM method closes.
"""

from __future__ import annotations


from typing import Optional, Tuple

from repro.boolfunc.transform import NpnTransform, all_transforms
from repro.boolfunc.truthtable import TruthTable



def canonicalize(
    f: TruthTable, include_output_neg: bool = True
) -> Tuple[TruthTable, NpnTransform]:
    """The minimum-table NPN representative and a transform reaching it.

    ``canonical == transform.apply(f)``; two functions are npn-equivalent
    iff their canonical tables are equal.
    """
    best_bits: Optional[int] = None
    best_t: Optional[NpnTransform] = None
    for t in all_transforms(f.n, include_output_neg=include_output_neg):
        bits = t.apply(f).bits
        if best_bits is None or bits < best_bits:
            best_bits = bits
            best_t = t
    assert best_t is not None
    return TruthTable(f.n, best_bits), best_t


def match(
    f: TruthTable, g: TruthTable, allow_output_neg: bool = True
) -> Optional[NpnTransform]:
    """Exhaustive matching: scan the group for ``t`` with ``t.apply(f) == g``."""
    if f.n != g.n:
        return None
    for t in all_transforms(f.n, include_output_neg=allow_output_neg):
        if t.apply(f) == g:
            return t
    return None


def is_npn_equivalent(f: TruthTable, g: TruthTable) -> bool:
    return match(f, g) is not None


def npn_class_count(n: int, limit_functions: Optional[int] = None) -> int:
    """Count NPN equivalence classes of ``n``-variable functions.

    Known values: 1 var → 2 classes, 2 vars → 4, 3 vars → 14,
    4 vars → 222.  ``limit_functions`` truncates the scan (testing aid).
    """
    seen = set()
    total = 1 << (1 << n)
    if limit_functions is not None:
        total = min(total, limit_functions)
    for bits in range(total):
        f = TruthTable(n, bits)
        canon, _ = canonicalize(f)
        seen.add(canon.bits)
    return len(seen)
