"""grm-match: Boolean matching using Generalized Reed-Muller forms.

A from-scratch reproduction of Tsai & Marek-Sadowska (DAC 1994).  The
public API re-exports the pieces a downstream user needs:

* :class:`TruthTable`, :class:`NpnTransform` — the function substrate;
* :class:`Grm` — canonical fixed-polarity Reed-Muller forms;
* :func:`match` / :func:`is_npn_equivalent` — the paper's matcher;
* :func:`canonical_form` — GRM-driven npn canonicalization;
* :func:`differentiate_output` — the Section 7 variable-differentiation
  experiment;
* :class:`CellLibrary` — technology mapping on top of the matcher.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.boolfunc import NpnTransform, TruthTable
from repro.core import (
    canonical_form,
    decide_polarity,
    differentiate_circuit,
    differentiate_output,
    is_np_equivalent,
    is_npn_equivalent,
    match,
    match_with_stats,
)
from repro.grm import Grm
from repro.library import CellLibrary

__version__ = "1.0.0"

__all__ = [
    "CellLibrary",
    "Grm",
    "NpnTransform",
    "TruthTable",
    "canonical_form",
    "decide_polarity",
    "differentiate_circuit",
    "differentiate_output",
    "is_np_equivalent",
    "is_npn_equivalent",
    "match",
    "match_with_stats",
    "__version__",
]
