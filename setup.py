"""Legacy setuptools shim (see the note at the top of pyproject.toml)."""

from setuptools import setup

setup()
