"""Scalar-vs-batch speedup curves for the bit-parallel kernel layer.

Standalone (argparse, no pytest) so CI can run it as a smoke step::

    PYTHONPATH=src python benchmarks/bench_kernels.py --guardrail

Scenarios, each swept over n in {4..10} and batch sizes {16, 256, 4096}:

* ``prekey`` — the engine's coarse pre-key plus the full cofactor-weight
  vector for every function in the batch.  The scalar side is what the
  engine pays without the kernel (per-function ``coarse_prekey`` at
  bucketing time, cofactor weights rederived in the polarity search);
  the batch side is ``batch_prekeys``, which yields both from one shared
  butterfly.  This is the path the classifier hits on every bucketing
  pass, and the acceptance target is >= 3x at n = 8, B = 256.
* ``weights`` — per-function Hamming weights under both batch strategies
  (``reduce``: packed butterfly; ``extract``: per-lane ``bit_count``)
  against the scalar loop, to keep ``AUTO_REDUCE_MAX_N`` honest.
* ``fprm`` — fixed-polarity Reed-Muller coefficient vectors for the
  whole batch vs a ``fprm_coefficients`` loop (cache cleared per trial:
  the scalar loop is memoised, the kernel is not, and the benchmark
  measures cold transforms).
* ``walsh`` — the packed bias-encoded Walsh butterfly vs the Python-list
  reference, one spectrum per function (B is the function count).

Above the flat sweep, the *word-array* cells (n in {12, 14, 16}) bench
the slab layout of ``repro.kernels.wordarray`` — the flat lane kernels
lose to scalar up there, so these cells compare slabs against the
scalar references directly:

* ``prekey_words`` — coarse pre-keys *plus* the full cofactor-weight
  vectors through the slab pipeline (the engine's bucketing payload);
  the acceptance target is >= 2x over scalar at every large cell.
* ``weights_words`` — the cofactor-weight vectors alone, against the
  raw masked-popcount loop of ``TruthTable.cofactor_weights``.  That
  scalar side is pure C big-int work, so the slab margin here is thin
  (~1..2x, batch-dependent) and only gated at parity; the >= 2x weight
  acceptance is carried by ``prekey_words``, which contains the same
  vectors.
* ``fprm_words`` — one cold FPRM transform of the whole batch.  Honest
  numbers: the scalar transform is memo-table-free C-bound big-int
  work, so the slab margin decays toward ~1.2x by n = 16.
* ``fprm_ladder`` — the paper's polarity-sweep workload (GRM weight
  vectors across a gray-code ladder of polarities).  The slab layout
  transforms once and applies each polarity toggle incrementally, which
  is where the >= 2x FPRM margin lives at n = 14..16.
* ``walsh`` — large-n tier check of the packed Walsh butterfly (32-bit
  fields at n = 15..16).

Scalar and batch sides of every cell run inside the *same* invocation so
machine noise cancels out of the ratio; each side is best-of ``--trials``.
Results go to ``BENCH_kernels.json`` (override with ``--out``).

``--guardrail`` runs only the acceptance cell (prekey, n = 8, B = 256)
plus the word-array cell (n = 14) — each asserts the batch results are
bit-identical to scalar — and exits non-zero if either kernel is slower
than scalar: a cheap CI tripwire, deliberately far below the 3x/2x
targets because shared CI boxes are noisy.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

from repro import kernels
from repro.boolfunc import walsh
from repro.boolfunc.truthtable import TruthTable
from repro.engine.prekey import coarse_prekey
from repro.grm.transform import fprm_coefficients
from repro.kernels import wordarray
from repro.utils import bitops

N_SWEEP = (4, 5, 6, 7, 8, 9, 10)
B_SWEEP = (16, 256, 4096)
ACCEPT_N = 8
ACCEPT_B = 256
ACCEPT_SPEEDUP = 3.0

# Word-array (slab) cells: n >= SLAB_MIN_N where the flat lane layout
# loses to scalar and the slab layout must carry the batch margin.
LARGE_CELLS = ((12, 256), (14, 256), (16, 64))
WORDS_ACCEPT_SPEEDUP = 2.0
WORDS_GUARD_N = 14
WORDS_GUARD_B = 64
LARGE_WALSH_B = 8


def make_batch(n: int, count: int, rng: random.Random):
    return [rng.getrandbits(1 << n) for _ in range(count)]


def best_of(trials: int, fn, *args):
    best = None
    for _ in range(trials):
        t0 = time.perf_counter()
        out = fn(*args)
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, out)
    return best


def scalar_prekeys_reference(bl, n):
    """What the engine pays per function without the kernel: the scalar
    ``coarse_prekey`` at bucketing time plus the cofactor-weight vector
    the polarity search derives later from the same table."""
    masks = bitops.axis_masks(n)
    keys = []
    weights = []
    for b in bl:
        keys.append(coarse_prekey(TruthTable(n, b)))
        weights.append(
            tuple(
                ((b & m).bit_count(), ((b >> (1 << i)) & m).bit_count())
                for i, m in enumerate(masks)
            )
        )
    return keys, weights


def bench_prekey(bl, n, trials):
    t_s, scalar = best_of(trials, scalar_prekeys_reference, bl, n)
    t_b, batch = best_of(trials, kernels.batch_prekeys, bl, n)
    assert batch == scalar, f"prekey mismatch at n={n}"
    return {"scalar_seconds": t_s, "batch_seconds": t_b, "speedup": t_s / t_b}


def bench_weights(bl, n, trials):
    t_s, scalar = best_of(trials, lambda: [b.bit_count() for b in bl])
    t_r, reduced = best_of(trials, kernels.batch_weights, bl, n, "reduce")
    t_e, extracted = best_of(trials, kernels.batch_weights, bl, n, "extract")
    assert reduced == scalar and extracted == scalar
    return {
        "scalar_seconds": t_s,
        "reduce_seconds": t_r,
        "extract_seconds": t_e,
        "best_strategy": "reduce" if t_r <= t_e else "extract",
        "auto_strategy": "reduce" if n <= kernels.AUTO_REDUCE_MAX_N else "extract",
    }


def bench_fprm(bl, n, trials):
    polarity = 0b0101_0101_01 & ((1 << n) - 1)

    def scalar():
        fprm_coefficients.cache_clear()
        return [fprm_coefficients(b, n, polarity) for b in bl]

    t_s, expected = best_of(trials, scalar)
    t_b, batch = best_of(trials, kernels.batch_fprm, bl, n, polarity)
    assert batch == expected, f"fprm mismatch at n={n}"
    return {"scalar_seconds": t_s, "batch_seconds": t_b, "speedup": t_s / t_b}


def bench_words_prekey(bl, n, trials):
    t_s, scalar = best_of(trials, scalar_prekeys_reference, bl, n)
    t_b, batch = best_of(trials, wordarray.batch_prekeys, bl, n)
    assert batch == scalar, f"word-array prekey mismatch at n={n}"
    return {"scalar_seconds": t_s, "words_seconds": t_b, "speedup": t_s / t_b}


def bench_words_weights(bl, n, trials):
    masks = bitops.axis_masks(n)

    def scalar():
        return [
            tuple(
                ((b & m).bit_count(), ((b >> (1 << i)) & m).bit_count())
                for i, m in enumerate(masks)
            )
            for b in bl
        ]

    t_s, expected = best_of(trials, scalar)
    t_b, batch = best_of(trials, wordarray.batch_cofactor_weights, bl, n)
    assert batch == expected, f"word-array cofactor-weight mismatch at n={n}"
    return {"scalar_seconds": t_s, "words_seconds": t_b, "speedup": t_s / t_b}


def bench_words_fprm(bl, n, trials):
    polarity = 0b0101_0101_0101_0101 & ((1 << n) - 1)

    def scalar():
        fprm_coefficients.cache_clear()
        return [fprm_coefficients(b, n, polarity) for b in bl]

    t_s, expected = best_of(trials, scalar)
    t_b, batch = best_of(trials, wordarray.batch_fprm, bl, n, polarity)
    assert batch == expected, f"word-array fprm mismatch at n={n}"
    return {"scalar_seconds": t_s, "words_seconds": t_b, "speedup": t_s / t_b}


def ladder_polarities(n: int):
    """A gray-code walk over three axes spread across the bands (one
    in-byte, one mid in-slab, one slab-index), so every step toggles a
    single polarity bit and every band's incremental update runs."""
    axes = (0, n // 2, n - 1)
    pols = []
    for i in range(8):
        g = i ^ (i >> 1)
        pols.append(sum(1 << axes[j] for j in range(3) if (g >> j) & 1))
    return pols


def bench_fprm_ladder(bl, n, trials):
    pols = ladder_polarities(n)

    def scalar():
        fprm_coefficients.cache_clear()
        return [
            [fprm_coefficients(b, n, p).bit_count() for b in bl] for p in pols
        ]

    t_s, expected = best_of(trials, scalar)
    t_b, batch = best_of(trials, wordarray.fprm_ladder_weights, bl, n, pols)
    assert batch == expected, f"fprm ladder mismatch at n={n}"
    return {
        "polarities": len(pols),
        "scalar_seconds": t_s,
        "words_seconds": t_b,
        "speedup": t_s / t_b,
    }


def bench_walsh(bl, n, trials):
    tables = [TruthTable(n, b) for b in bl]
    refs = [
        [1 - 2 * ((b >> m) & 1) for m in range(1 << n)] for b in bl
    ]
    t_s, expected = best_of(
        trials, lambda: [walsh._butterfly_list(list(r)) for r in refs]
    )
    t_b, packed = best_of(trials, lambda: [walsh.walsh_spectrum(f) for f in tables])
    assert packed == expected, f"walsh mismatch at n={n}"
    return {"list_seconds": t_s, "packed_seconds": t_b, "speedup": t_s / t_b}


def run_sweep(trials: int, seed: int, quick: bool):
    ns = N_SWEEP if not quick else (4, 8)
    bs = B_SWEEP if not quick else (256,)
    rng = random.Random(seed)
    cells = {}
    for n in ns:
        for count in bs:
            bl = make_batch(n, count, rng)
            cell = {
                "prekey": bench_prekey(bl, n, trials),
                "weights": bench_weights(bl, n, trials),
                "fprm": bench_fprm(bl, n, trials),
            }
            if count <= 256 and n <= 10:
                cell["walsh"] = bench_walsh(bl, n, trials)
            cells[f"n={n},B={count}"] = cell
            print(
                f"n={n:2d} B={count:4d}  prekey {cell['prekey']['speedup']:5.2f}x  "
                f"fprm {cell['fprm']['speedup']:5.2f}x  "
                f"weights best={cell['weights']['best_strategy']}"
                + (
                    f"  walsh {cell['walsh']['speedup']:5.2f}x"
                    if "walsh" in cell
                    else ""
                )
            )
    if not quick:
        for n, count in LARGE_CELLS:
            bl = make_batch(n, count, rng)
            cell = {
                "prekey_words": bench_words_prekey(bl, n, trials),
                "weights_words": bench_words_weights(bl, n, trials),
                "fprm_words": bench_words_fprm(bl, n, trials),
                "fprm_ladder": bench_fprm_ladder(bl, n, trials),
                "walsh": bench_walsh(bl[:LARGE_WALSH_B], n, trials),
            }
            cells[f"n={n},B={count}"] = cell
            print(
                f"n={n:2d} B={count:4d}  prekey {cell['prekey_words']['speedup']:5.2f}x  "
                f"weights {cell['weights_words']['speedup']:5.2f}x  "
                f"fprm {cell['fprm_words']['speedup']:5.2f}x  "
                f"ladder {cell['fprm_ladder']['speedup']:5.2f}x  "
                f"walsh {cell['walsh']['speedup']:5.2f}x  [words]"
            )
    return cells


def run_guardrail(trials: int, seed: int) -> int:
    rng = random.Random(seed)
    bl = make_batch(ACCEPT_N, ACCEPT_B, rng)
    cell = bench_prekey(bl, ACCEPT_N, trials)
    print(
        f"guardrail prekey n={ACCEPT_N} B={ACCEPT_B}: "
        f"scalar {cell['scalar_seconds'] * 1e3:.2f}ms "
        f"batch {cell['batch_seconds'] * 1e3:.2f}ms "
        f"speedup {cell['speedup']:.2f}x"
    )
    if cell["speedup"] < 1.0:
        print("GUARDRAIL FAILED: batch prekey slower than scalar", file=sys.stderr)
        return 1
    # Word-array cell: bench_words_prekey asserts bit-identical keys and
    # weight vectors against the scalar reference before timing.
    wbl = make_batch(WORDS_GUARD_N, WORDS_GUARD_B, rng)
    wcell = bench_words_prekey(wbl, WORDS_GUARD_N, min(trials, 3))
    print(
        f"guardrail prekey_words n={WORDS_GUARD_N} B={WORDS_GUARD_B}: "
        f"scalar {wcell['scalar_seconds'] * 1e3:.2f}ms "
        f"words {wcell['words_seconds'] * 1e3:.2f}ms "
        f"speedup {wcell['speedup']:.2f}x"
    )
    if wcell["speedup"] < 1.0:
        print(
            "GUARDRAIL FAILED: word-array prekey slower than scalar",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--trials", type=int, default=3, help="best-of trials per side")
    ap.add_argument(
        "--quick", action="store_true", help="only n in {4,8} at B=256, no JSON gate"
    )
    ap.add_argument(
        "--guardrail",
        action="store_true",
        help="CI mode: acceptance cell only, fail if batch is slower than scalar",
    )
    ap.add_argument("--out", default=None, help="JSON output path")
    args = ap.parse_args(argv)

    if args.guardrail:
        return run_guardrail(max(args.trials, 5), args.seed)

    cells = run_sweep(args.trials, args.seed, args.quick)
    report = {
        "benchmark": "bench_kernels",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "seed": args.seed,
        "trials": args.trials,
        "n_sweep": list(N_SWEEP if not args.quick else (4, 8)),
        "batch_sweep": list(B_SWEEP if not args.quick else (256,)),
        "auto_reduce_max_n": kernels.AUTO_REDUCE_MAX_N,
        "kernel_min_batch": kernels.KERNEL_MIN_BATCH,
        "slab_min_n": wordarray.SLAB_MIN_N,
        "large_cells": [list(cell) for cell in LARGE_CELLS]
        if not args.quick
        else [],
        "cells": cells,
    }

    out = Path(args.out) if args.out else Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    rc = 0
    accept = cells.get(f"n={ACCEPT_N},B={ACCEPT_B}")
    if accept and not args.quick and accept["prekey"]["speedup"] < ACCEPT_SPEEDUP:
        print(
            f"WARNING: prekey speedup at n={ACCEPT_N}, B={ACCEPT_B} below "
            f"{ACCEPT_SPEEDUP}x",
            file=sys.stderr,
        )
        rc = 1
    if not args.quick:
        for n, count in LARGE_CELLS:
            cell = cells[f"n={n},B={count}"]
            for scenario, floor in (
                ("prekey_words", WORDS_ACCEPT_SPEEDUP),
                ("fprm_ladder", WORDS_ACCEPT_SPEEDUP),
                ("weights_words", 1.0),
            ):
                if cell[scenario]["speedup"] < floor:
                    print(
                        f"WARNING: {scenario} speedup at n={n}, B={count} "
                        f"below {floor}x",
                        file=sys.stderr,
                    )
                    rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
