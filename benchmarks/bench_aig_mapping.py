"""AIG mapping — the matcher embedded in a production-shaped flow.

Measures cut-based technology mapping over benchmark AIGs: matcher
calls per cut, the effectiveness of the npn-class cache (the modern
descendant of the paper's "precompute the GRM signatures of the
library"), and end-to-end mapping throughput.
"""

from __future__ import annotations

import time

import pytest

from _report import emit, emit_header
from repro.aig import Aig, AigMapper
from repro.benchcircuits import build_circuit

CIRCUITS = ["con1", "z4ml", "rd73", "misex1", "x2"]


def _subject(name: str) -> Aig:
    return Aig.from_netlist(build_circuit(name).to_netlist())


@pytest.mark.parametrize("name", CIRCUITS)
def test_map_circuit(benchmark, name):
    aig = _subject(name)

    def run():
        result = AigMapper().map(aig)
        assert result is not None
        return result

    result = benchmark(run)
    assert result.verify()


def test_mapping_report(benchmark):
    def run():
        rows = []
        for name in CIRCUITS + ["cm138a", "ldd"]:
            aig = _subject(name)
            mapper = AigMapper()
            t0 = time.perf_counter()
            result = mapper.map(aig)
            elapsed = time.perf_counter() - t0
            assert result is not None and result.verify()
            s = result.stats
            rows.append(
                (
                    name,
                    aig.num_ands(),
                    len(result.nodes),
                    result.area,
                    s.cuts_evaluated,
                    s.class_cache_hits,
                    elapsed,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("AIG technology mapping — npn matching as the inner loop")
    emit(
        f"{'circuit':<8} {'ANDs':>6} {'cells':>6} {'area':>8} "
        f"{'cuts':>7} {'cache hits':>11} {'time':>8}"
    )
    for name, ands, cells, area, cut_count, hits, elapsed in rows:
        emit(
            f"{name:<8} {ands:>6} {cells:>6} {area:>8.1f} "
            f"{cut_count:>7} {hits:>11} {elapsed:>6.2f}s"
        )
        assert cells <= ands  # mapping must compress the AND graph


def test_class_cache_effectiveness(benchmark):
    aig = _subject("z4ml")

    def cold_and_warm():
        cold = AigMapper()
        r1 = cold.map(aig)
        warm_stats = cold.map(aig).stats  # second run shares the cache
        return r1.stats, warm_stats

    stats_cold, stats_warm = benchmark.pedantic(cold_and_warm, rounds=1, iterations=1)
    emit_header("npn-class cache — cold vs warm mapping of z4ml")
    emit(f"{'':<18} {'cold':>8} {'warm':>8}")
    emit(f"{'cache hits':<18} {stats_cold.class_cache_hits:>8} {stats_warm.class_cache_hits:>8}")
    emit(f"{'matcher calls':<18} {stats_cold.matcher_calls:>8} {stats_warm.matcher_calls:>8}")
    assert stats_warm.class_cache_hits >= stats_cold.class_cache_hits
