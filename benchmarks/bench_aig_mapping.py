"""AIG mapping — the matcher embedded in a production-shaped flow.

Measures cut-based technology mapping over benchmark AIGs in both
mapper modes: the two-phase batched flow (cut-function dedup, engine
classification, witness-replay binds) and the historical percut
baseline (one ``canonical_form`` per cut plus a mapper-local class
cache — the modern descendant of the paper's "precompute the GRM
signatures of the library").  See ``bench_netlist_flow.py`` for the
full-registry wall-clock comparison.
"""

from __future__ import annotations

import time

import pytest

from _report import emit, emit_header
from repro.aig import Aig, AigMapper
from repro.benchcircuits import build_circuit

CIRCUITS = ["con1", "z4ml", "rd73", "misex1", "x2"]


def _subject(name: str) -> Aig:
    return Aig.from_netlist(build_circuit(name).to_netlist())


@pytest.mark.parametrize("name", CIRCUITS)
def test_map_circuit(benchmark, name):
    aig = _subject(name)

    def run():
        result = AigMapper().map(aig)
        assert result is not None
        return result

    result = benchmark(run)
    assert result.verify()


def test_mapping_report(benchmark):
    def run():
        rows = []
        for name in CIRCUITS + ["cm138a", "ldd"]:
            aig = _subject(name)
            mapper = AigMapper()
            t0 = time.perf_counter()
            result = mapper.map(aig)
            elapsed = time.perf_counter() - t0
            assert result is not None and result.verify()
            s = result.stats
            rows.append(
                (
                    name,
                    aig.num_ands(),
                    len(result.nodes),
                    result.area,
                    s.cuts_evaluated,
                    s.distinct_cut_functions,
                    s.cut_classes,
                    elapsed,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("AIG technology mapping — the batched two-phase flow")
    emit(
        f"{'circuit':<8} {'ANDs':>6} {'cells':>6} {'area':>8} "
        f"{'cuts':>7} {'distinct':>9} {'classes':>8} {'time':>8}"
    )
    for name, ands, cells, area, cut_count, distinct, classes, elapsed in rows:
        emit(
            f"{name:<8} {ands:>6} {cells:>6} {area:>8.1f} "
            f"{cut_count:>7} {distinct:>9} {classes:>8} {elapsed:>6.2f}s"
        )
        assert cells <= ands  # mapping must compress the AND graph


def test_batched_vs_percut(benchmark):
    def run():
        rows = []
        for name in ("z4ml", "rd73"):
            aig = _subject(name)
            t0 = time.perf_counter()
            batched = AigMapper().map(aig)
            t_batched = time.perf_counter() - t0
            t0 = time.perf_counter()
            percut = AigMapper(mode="percut").map(aig)
            t_percut = time.perf_counter() - t0
            assert batched is not None and percut is not None
            rows.append((name, t_batched, t_percut, batched.stats, percut.stats))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("Batched vs percut matching on the same subjects")
    emit(
        f"{'circuit':<8} {'batched':>9} {'percut':>9} {'speedup':>8} "
        f"{'replays':>8} {'matcher calls':>14}"
    )
    for name, t_b, t_p, sb, sp in rows:
        emit(
            f"{name:<8} {t_b:>8.3f}s {t_p:>8.3f}s {t_p / t_b:>7.1f}x "
            f"{sb.witness_replays:>8} {sp.matcher_calls:>14}"
        )
        assert sb.matcher_calls == 0  # batched never runs the matcher


def test_class_cache_effectiveness(benchmark):
    aig = _subject("z4ml")

    def cold_and_warm():
        percut = AigMapper(mode="percut")
        stats_cold = percut.map(aig).stats
        stats_warm = percut.map(aig).stats  # second run shares the cache
        batched = AigMapper()
        batched.map(aig)
        engine_warm = batched.map(aig).stats  # engine key cache this time
        return stats_cold, stats_warm, engine_warm

    stats_cold, stats_warm, engine_warm = benchmark.pedantic(
        cold_and_warm, rounds=1, iterations=1
    )
    emit_header("npn-class caches — cold vs warm mapping of z4ml")
    emit(f"{'percut':<18} {'cold':>8} {'warm':>8}")
    emit(f"{'cache hits':<18} {stats_cold.class_cache_hits:>8} {stats_warm.class_cache_hits:>8}")
    emit(f"{'matcher calls':<18} {stats_cold.matcher_calls:>8} {stats_warm.matcher_calls:>8}")
    emit(
        f"{'batched rerun':<18} {'engine cache hits':>18} "
        f"{engine_warm.engine_cache_hits:>8}"
    )
    assert stats_warm.class_cache_hits >= stats_cold.class_cache_hits
    assert engine_warm.engine_cache_hits > 0
