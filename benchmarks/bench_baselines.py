"""Comparison — GRM matcher vs exhaustive and signature-only baselines.

The reproduction bands ask for the "who wins, by what factor" shape:

* the exhaustive canonicalizer explodes factorially, so the GRM matcher
  overtakes it by n ≈ 5 and the gap grows without bound;
* the signature-only matcher is competitive on random functions (their
  cofactor weights differentiate well) but collapses on symmetric /
  balanced functions, where its residual search is factorial — exactly
  the regime the paper's GRM forms and symmetry detection handle.
"""

from __future__ import annotations

import random
import time

import pytest

from _report import emit, emit_header
from repro.baselines import exhaustive, signature_matcher, spectral
from repro.boolfunc import ops
from repro.boolfunc.transform import NpnTransform, random_equivalent_pair
from repro.core.matcher import match


def _pairs(n, count, seed):
    rng = random.Random(seed)
    return [random_equivalent_pair(n, rng)[:2] for _ in range(count)]


@pytest.mark.parametrize("n", [3, 4, 5])
def test_exhaustive_matcher(benchmark, n):
    pairs = _pairs(n, 5, seed=n)
    benchmark(lambda: [exhaustive.match(f, g) for f, g in pairs])


@pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
def test_signature_matcher(benchmark, n):
    pairs = _pairs(n, 5, seed=n)
    benchmark(lambda: [signature_matcher.match(f, g) for f, g in pairs])


@pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
def test_grm_matcher(benchmark, n):
    pairs = _pairs(n, 5, seed=n)
    benchmark(lambda: [match(f, g) for f, g in pairs])


@pytest.mark.parametrize("n", [3, 4, 5, 6])
def test_spectral_matcher(benchmark, n):
    pairs = _pairs(n, 5, seed=n)
    benchmark(lambda: [spectral.match(f, g) for f, g in pairs])


def test_crossover_table(benchmark):
    """One-shot head-to-head timing table across n."""

    def run():
        rows = []
        for n in (3, 4, 5, 6):
            pairs = _pairs(n, 5, seed=42 + n)
            t0 = time.perf_counter()
            for f, g in pairs:
                assert match(f, g) is not None
            grm_t = time.perf_counter() - t0
            t0 = time.perf_counter()
            for f, g in pairs:
                assert signature_matcher.match(f, g) is not None
            sig_t = time.perf_counter() - t0
            t0 = time.perf_counter()
            for f, g in pairs:
                assert spectral.match(f, g) is not None
            spec_t = time.perf_counter() - t0
            if n <= 5:
                t0 = time.perf_counter()
                for f, g in pairs:
                    assert exhaustive.match(f, g) is not None
                exh_t = time.perf_counter() - t0
            else:
                exh_t = float("nan")
            rows.append((n, grm_t, sig_t, spec_t, exh_t))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("Baselines — seconds for 5 equivalent matches (lower is better)")
    emit(f"{'n':>3} {'GRM (paper)':>12} {'signatures':>12} {'spectral':>12} {'exhaustive':>12}")
    for n, grm_t, sig_t, spec_t, exh_t in rows:
        exh = f"{exh_t:12.4f}" if exh_t == exh_t else f"{'(skipped)':>12}"
        emit(f"{n:>3} {grm_t:>12.4f} {sig_t:>12.4f} {spec_t:>12.4f} {exh}")
    # Shape assertion: exhaustive must already be losing badly at n = 5.
    n5 = [r for r in rows if r[0] == 5][0]
    assert n5[4] > n5[1]


def test_structured_regime_table(benchmark):
    """Structured functions: signature-style baselines stall, GRM holds.

    Random functions flatter the weight/spectral baselines (first-order
    statistics separate everything); on symmetric, selector and
    balanced functions their residual search explodes while the GRM
    matcher's symmetry machinery answers immediately.
    """
    import random as _random

    from repro.benchcircuits import build_circuit
    from repro.boolfunc.random_gen import random_balanced_function

    rng = _random.Random(33)
    mux = build_circuit("cm151a").outputs[0].table
    workloads = [
        ("majority-9", ops.majority(9)),
        ("cm151a mux", mux),
        ("balanced-7", random_balanced_function(7, rng)),
        ("parity-10", __import__("repro.boolfunc", fromlist=["TruthTable"]).TruthTable.parity(10)),
    ]

    def run():
        rows = []
        for label, f in workloads:
            g = NpnTransform.random(f.n, rng).apply(f)
            t0 = time.perf_counter()
            assert match(f, g) is not None
            grm_t = time.perf_counter() - t0

            def attempt(fn):
                t0 = time.perf_counter()
                try:
                    ok = fn() is not None
                except RuntimeError:
                    return None
                return time.perf_counter() - t0 if ok else None

            sig_t = attempt(lambda: signature_matcher.match(f, g))
            spec_t = attempt(lambda: spectral.match(f, g))
            rows.append((label, f.n, grm_t, sig_t, spec_t))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("Structured regimes — GRM vs signature-style baselines")
    emit(f"{'workload':<12} {'n':>3} {'GRM':>10} {'signatures':>12} {'spectral':>12}")
    for label, n, grm_t, sig_t, spec_t in rows:
        sig = f"{sig_t:>10.4f}s" if sig_t is not None else f"{'BLOWN UP':>11}"
        spec = f"{spec_t:>10.4f}s" if spec_t is not None else f"{'BLOWN UP':>11}"
        emit(f"{label:<12} {n:>3} {grm_t:>9.4f}s {sig} {spec}")


def test_symmetric_regime_signature_collapse(benchmark):
    """Where the paper's method wins outright: symmetric functions.

    The signature baseline's blocks stay maximal and its residual search
    is refused beyond a budget; the GRM matcher's symmetry collapse
    answers immediately.
    """
    rng = random.Random(5)
    f = ops.majority(9)
    g = NpnTransform.random(9, rng).apply(f)

    def grm_side():
        return match(f, g)

    result = benchmark(grm_side)
    assert result is not None
    with pytest.raises(RuntimeError):
        signature_matcher.np_match(f, g, max_block_permutations=10000)
