"""Substrate scaling — FPRM transform, GRM forms, BDD and FDD packages.

The repro band predicts "easy to code; slower on larger benchmark
functions": this harness quantifies how each substrate scales with the
variable count so the per-output costs in Table 1 have a basis.
"""

from __future__ import annotations

import random
import time

import pytest

from _report import emit, emit_header
from repro.bdd.manager import BddManager
from repro.boolfunc.truthtable import TruthTable
from repro.core.polarity import decide_polarity
from repro.fdd.manager import Fdd
from repro.grm.forms import Grm
from repro.grm.transform import fprm_coefficients


@pytest.mark.parametrize("n", [10, 13, 16])
def test_fprm_transform(benchmark, n):
    rng = random.Random(n)
    f = TruthTable.random(n, rng)
    benchmark(fprm_coefficients, f.bits, n, (1 << n) - 1)


@pytest.mark.parametrize("n", [8, 10, 12])
def test_grm_form_construction(benchmark, n):
    rng = random.Random(n)
    f = TruthTable.random(n, rng)
    benchmark(Grm.from_truthtable, f, (1 << n) - 1)


@pytest.mark.parametrize("n", [8, 10, 12])
def test_polarity_decision(benchmark, n):
    rng = random.Random(n)
    f = TruthTable.random(n, rng)
    benchmark(decide_polarity, f)


@pytest.mark.parametrize("n", [8, 10, 12])
def test_bdd_construction(benchmark, n):
    rng = random.Random(n)
    f = TruthTable.random(n, rng)

    def build():
        mgr = BddManager(n)
        return mgr.from_truthtable(f)

    benchmark(build)


@pytest.mark.parametrize("n", [8, 10])
def test_fdd_fold_from_bdd(benchmark, n):
    rng = random.Random(n)
    f = TruthTable.random(n, rng)

    def build():
        mgr = BddManager(n)
        node = mgr.from_truthtable(f)
        return Fdd.fold_from_bdd(mgr, node, (1 << n) - 1).num_cubes()

    benchmark(build)


def test_scaling_table(benchmark):
    def run():
        rows = []
        for n in (8, 10, 12, 14, 16, 18):
            rng = random.Random(n)
            f = TruthTable.random(n, rng)
            t0 = time.perf_counter()
            coeffs = fprm_coefficients(f.bits, n, (1 << n) - 1)
            fprm_t = time.perf_counter() - t0
            t0 = time.perf_counter()
            decide_polarity(f)
            pol_t = time.perf_counter() - t0
            cube_count = bin(coeffs).count("1")
            rows.append((n, fprm_t, pol_t, cube_count))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("Substrate scaling — random n-variable functions")
    emit(f"{'n':>3} {'FPRM (ms)':>10} {'polarity (ms)':>14} {'GRM cubes':>10}")
    for n, fprm_t, pol_t, cubes in rows:
        emit(f"{n:>3} {fprm_t * 1e3:>10.2f} {pol_t * 1e3:>14.2f} {cubes:>10}")
    # Random functions have ~half of all cubes present: the dense path
    # is exponential in n, which is the "slower on larger functions"
    # prediction of the repro band.
    assert rows[-1][3] > rows[0][3]
