"""Benchmark-session hooks: flush the queued report tables at the end."""

from _report import flush_to


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    flush_to(terminalreporter.write_line)
