"""Table 2 — sizes of non-differentiable variable sets.

Regenerates the paper's Table 2: for circuits with hard output
functions, the sizes (and multiplicities) of the input subsets that no
output function differentiates.  The paper's hard circuits are the
multiplexers (cm150a, cm151a) and a handful of random-logic blocks; the
reproduction's exact circuits land in the same place.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from _report import emit, emit_header
from repro.benchcircuits import build_circuit, circuit_names
from repro.core.differentiate import differentiate_circuit

PAPER_TABLE2 = {
    "apex6": "(2)", "apex7": "(6)", "c8": "0", "cht": "(2)x5",
    "cm150a": "(4, 16)", "cm151a": "(3, 8)", "cu": "(2, 4)", "des": "0",
    "duke2": "0", "example2": "(2)x8", "frg2": "0", "misex2": "0",
    "sao2": "0", "term1": "(2)", "vg2": "0", "x3": "(2)",
}


def _format_sizes(sizes: List[int]) -> str:
    if not sizes:
        return "0"
    counts = Counter(sizes)
    parts = []
    for size in sorted(counts):
        mult = counts[size]
        parts.append(f"({size})" + (f"x{mult}" if mult > 1 else ""))
    return " ".join(parts)


def test_table2_hard_sets(benchmark):
    results: Dict[str, List[int]] = {}

    def run_all():
        for name in circuit_names():
            circuit = build_circuit(name)
            res = differentiate_circuit(
                circuit.name, circuit.n_inputs, circuit.output_pairs(), mode="paper"
            )
            results[name] = res.table2_set_sizes()
        return len(results)

    count = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert count == len(circuit_names())

    emit_header("TABLE 2 — Sizes of non-differentiable sets of variables (reproduction)")
    emit(f"{'test case':<10} {'measured #hi':<22} {'paper #hi':<12}")
    for name in circuit_names():
        measured = _format_sizes(results[name])
        paper = PAPER_TABLE2.get(name, "-")
        if measured == "0" and paper in ("-", "0"):
            continue  # only report circuits with something to say
        emit(f"{name:<10} {measured:<22} {paper:<12}")
    # The exact circuits must reproduce the paper's qualitative story:
    # the multiplexers have non-differentiable data/select groups.
    assert results["cm150a"], "cm150a should have non-differentiable sets"
    assert results["cm151a"], "cm151a should have non-differentiable sets"
