"""Batch-classification benchmark: engine vs per-function canonical_form.

Standalone (argparse, no pytest) so CI can run it as a smoke step::

    PYTHONPATH=src python benchmarks/bench_classify.py --quick

Scenarios:

* ``repeated_classes`` — the engine's target workload (the paper's
  library matching): a batch drawn from a small pool of base functions,
  half exact repeats and half fresh random NPN transforms.  The engine
  must beat the per-function ``canonical_form`` loop by >= 5x here.
* ``pure_random`` — uniform random tables; with n = 5 virtually every
  function opens a new class, so there is nothing for dedup, caching,
  or membership probes to exploit and the honest expectation is ~1x.
* ``kernel_on_off`` — the repeated-classes batch with the bit-parallel
  bucketing kernels forced on (``kernel="batch"``) vs off
  (``kernel="scalar"``); the groupings must match exactly (see also
  ``BENCH_kernels.json`` for the isolated kernel curves).
* ``workers`` — the repeated-classes batch under 1, 2, and 4 worker
  processes (wall-clock parallel benefit requires free cores; the
  recorded ``cpu_count`` says what this box could show).
* ``cache_rerun`` — the repeated-classes batch classified twice through
  one engine: the second pass must be nearly pure LRU cache hits.
* ``npn_space_n4`` — all 65536 4-variable functions through the engine
  (skipped under ``--quick``); the class count must be exactly 222.

Results are written to ``BENCH_classify.json`` (override with
``--out``) with per-scenario wall times and the engine stats counters.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

from repro.boolfunc.truthtable import TruthTable
from repro.core.canonical import canonical_form
from repro.engine import ClassificationEngine, EngineOptions, classify_batch
from repro.grm.transform import fprm_coefficients
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.testing.workloads import (
    DEFAULT_N_VARS as N_VARS,
    DEFAULT_POOL_SIZE as POOL_SIZE,
    make_random_batch,
    make_repeated_batch,
)


def fresh_tables(batch):
    """Rebuild tables so lazy per-object caches never leak between runs."""
    return [TruthTable(f.n, f.bits) for f in batch]


def run_baseline(batch):
    fprm_coefficients.cache_clear()
    tables = fresh_tables(batch)
    t0 = time.perf_counter()
    keys = [canonical_form(f)[0].bits for f in tables]
    return time.perf_counter() - t0, keys


def run_engine(batch, **options):
    fprm_coefficients.cache_clear()
    tables = fresh_tables(batch)
    t0 = time.perf_counter()
    result = classify_batch(tables, **options)
    return time.perf_counter() - t0, result


def same_grouping(base_keys, result):
    groups = {}
    for i, k in enumerate(base_keys):
        groups.setdefault(k, []).append(i)
    return {k.key: v for k, v in result.members.items()} == groups


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size", type=int, default=4096, help="batch size")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--trials", type=int, default=3, help="best-of trials")
    ap.add_argument(
        "--quick", action="store_true", help="small batch, skip the n=4 space"
    )
    ap.add_argument("--out", default=None, help="JSON output path")
    args = ap.parse_args(argv)

    size = 512 if args.quick else args.size
    trials = 1 if args.quick else args.trials
    rng = random.Random(args.seed)
    report = {
        "benchmark": "bench_classify",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "batch_size": size,
        "pool_size": POOL_SIZE,
        "n_vars": N_VARS,
        "seed": args.seed,
        "trials": trials,
        "scenarios": {},
    }

    # -- repeated classes -------------------------------------------------
    batch = make_repeated_batch(size, rng)
    t_base = min(run_baseline(batch)[0] for _ in range(trials))
    _, base_keys = run_baseline(batch)
    t_eng, result = min(
        (run_engine(batch) for _ in range(trials)), key=lambda r: r[0]
    )
    assert same_grouping(base_keys, result), "engine grouping != baseline"
    speedup = t_base / t_eng
    report["scenarios"]["repeated_classes"] = {
        "baseline_seconds": t_base,
        "engine_seconds": t_eng,
        "speedup": speedup,
        "classes": result.num_classes,
        "stats": result.stats.as_dict(),
    }
    print(
        f"repeated_classes: baseline {t_base:.3f}s engine {t_eng:.3f}s "
        f"speedup {speedup:.2f}x ({result.num_classes} classes)"
    )

    # -- pure random (honest no-repeat case) ------------------------------
    rand_batch = make_random_batch(size, rng)
    t_base_r = min(run_baseline(rand_batch)[0] for _ in range(trials))
    _, base_keys_r = run_baseline(rand_batch)
    t_eng_r, result_r = min(
        (run_engine(rand_batch) for _ in range(trials)), key=lambda r: r[0]
    )
    assert same_grouping(base_keys_r, result_r)
    report["scenarios"]["pure_random"] = {
        "baseline_seconds": t_base_r,
        "engine_seconds": t_eng_r,
        "speedup": t_base_r / t_eng_r,
        "classes": result_r.num_classes,
    }
    print(
        f"pure_random: baseline {t_base_r:.3f}s engine {t_eng_r:.3f}s "
        f"speedup {t_base_r / t_eng_r:.2f}x ({result_r.num_classes} classes)"
    )

    # -- kernel on/off ----------------------------------------------------
    # The same repeated-classes batch through the engine with the batch
    # kernels forced on vs forced off; everything else (cache, workers,
    # matchers) identical, so the delta is the bucketing pipeline alone.
    t_scalar_k, result_sk = min(
        (run_engine(batch, kernel="scalar") for _ in range(trials)),
        key=lambda r: r[0],
    )
    t_batch_k, result_bk = min(
        (run_engine(batch, kernel="batch") for _ in range(trials)),
        key=lambda r: r[0],
    )
    assert same_grouping(base_keys, result_sk), "kernel=scalar diverged"
    assert same_grouping(base_keys, result_bk), "kernel=batch diverged"
    report["scenarios"]["kernel_on_off"] = {
        "scalar_seconds": t_scalar_k,
        "batch_seconds": t_batch_k,
        "speedup": t_scalar_k / t_batch_k,
        "kernel_batched": result_bk.stats.kernel_batched,
        "kernel_scalar": result_sk.stats.kernel_scalar,
        "note": "end-to-end classify; bucketing is one slice of total time",
    }
    print(
        f"kernel_on_off: scalar {t_scalar_k:.3f}s batch {t_batch_k:.3f}s "
        f"speedup {t_scalar_k / t_batch_k:.2f}x "
        f"({result_bk.stats.kernel_batched} functions batched)"
    )

    # -- worker sweep -----------------------------------------------------
    workers_times = {}
    for workers in (1, 2, 4):
        t_w, result_w = run_engine(batch, workers=workers)
        assert same_grouping(base_keys, result_w), f"workers={workers} diverged"
        workers_times[str(workers)] = t_w
        print(f"workers={workers}: {t_w:.3f}s")
    report["scenarios"]["workers"] = {
        "seconds": workers_times,
        "note": "parallel wall-clock gains require free cores; see cpu_count",
    }

    # -- cache rerun ------------------------------------------------------
    engine = ClassificationEngine(EngineOptions())
    fprm_coefficients.cache_clear()
    engine.classify(fresh_tables(batch))
    t0 = time.perf_counter()
    rerun = engine.classify(fresh_tables(batch))
    t_rerun = time.perf_counter() - t0
    assert same_grouping(base_keys, rerun)
    report["scenarios"]["cache_rerun"] = {
        "second_pass_seconds": t_rerun,
        "cache_hits": rerun.stats.cache_hits,
        "cache_misses": rerun.stats.cache_misses,
    }
    print(
        f"cache_rerun: second pass {t_rerun:.3f}s "
        f"({rerun.stats.cache_hits} hits / {rerun.stats.cache_misses} misses)"
    )

    # -- full 4-variable space -------------------------------------------
    if not args.quick:
        from repro.engine import npn_class_count_engine

        fprm_coefficients.cache_clear()
        t0 = time.perf_counter()
        count = npn_class_count_engine(4)
        t_n4 = time.perf_counter() - t0
        assert count == 222, count
        report["scenarios"]["npn_space_n4"] = {
            "seconds": t_n4,
            "classes": count,
        }
        print(f"npn_space_n4: {count} classes in {t_n4:.3f}s")

    # -- metrics snapshot -------------------------------------------------
    # One extra instrumented pass over the repeated-classes batch, kept
    # out of the timed scenarios so observability cannot skew them.
    registry = MetricsRegistry()
    obs_runtime.enable(metrics=registry)
    try:
        run_engine(batch)
    finally:
        obs_runtime.disable()
    report["metrics_snapshot"] = registry.snapshot()

    out = Path(args.out) if args.out else Path(__file__).resolve().parents[1] / "BENCH_classify.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if not args.quick and report["scenarios"]["repeated_classes"]["speedup"] < 5.0:
        print("WARNING: repeated_classes speedup below 5x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
