"""Dispatcher-vs-pure-GRM matching cost across signature tiers.

Standalone (argparse, no pytest) so CI can run it as a smoke step::

    PYTHONPATH=src python benchmarks/bench_signatures.py --guardrail

Two workloads, each matched under two configurations:

* ``dispatcher`` — the default :class:`MatchOptions`: the tier
  dispatcher escalates weights -> influence -> sensitivity and only
  falls through to GRM construction when every truth-table tier
  collides;
* ``pure-grm`` — ``use_tier_dispatch=False`` with the paper's original
  signature families only, i.e. every inequivalence is settled by
  GRM-derived signatures or the search itself.

The workloads:

* ``adversarial`` — the committed weight-twin corpus
  (``tests/corpus/weight_twins.json``), amplified by seeded random npn
  transforms of both sides (which preserve the verdict *and* the coarse
  pre-key collision).  Every pair defeats the weight tier by
  construction, so this isolates what influence/sensitivity buy over
  building GRM forms.  Acceptance: dispatcher >= 2x faster.
* ``random`` — the fuzzer's seeded mixed pair stream (equivalent /
  inequivalent / weight-twin / random, n = 3..7).  Most pairs are
  settled by the weight tier or genuinely need the search; acceptance:
  the dispatcher is not slower (>= 0.9x, tolerating timer noise).

Both configurations run on the same pairs inside one invocation (noise
cancels out of the ratio), each side best-of ``--trials`` with the
sensitivity/influence memo caches cleared per trial so cold costs are
measured.  Verdicts are cross-checked pair by pair — a disagreement
aborts the benchmark.  Per-family prune win rates on the adversarial
corpus (which tier settled how many pairs) land in the report for
EXPERIMENTS.md.  Results go to ``BENCH_signatures.json``.

``--guardrail`` runs a reduced adversarial cell and exits non-zero when
the dispatcher is slower than pure GRM — far below the 2x acceptance
target because shared CI boxes are noisy.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from collections import Counter
from pathlib import Path

from repro.boolfunc.transform import NpnTransform
from repro.boolfunc.truthtable import TruthTable
from repro.core import sensitivity as sens_mod
from repro.core.matcher import MatchOptions, match_with_stats
from repro.testing import corpus as corpus_mod
from repro.testing import oracle as oracle_mod

CORPUS_PATH = Path(__file__).resolve().parents[1] / "tests" / "corpus" / "weight_twins.json"

DISPATCHER = MatchOptions()
PURE_GRM = MatchOptions(
    use_tier_dispatch=False,
    signature_families=("weights", "vic", "inc", "primes"),
)
ACCEPT_ADVERSARIAL = 2.0
ACCEPT_RANDOM = 0.9


def adversarial_pairs(seed: int, amplify: int):
    """The committed weight-twin corpus, amplified by random transforms.

    Transforming both sides independently preserves npn-inequivalence
    and keeps the coarse pre-keys colliding (they are npn-invariant and
    were equal to begin with), so every amplified pair still defeats
    the weight tier.
    """
    rng = random.Random(seed)
    base = corpus_mod.load_weight_twins(CORPUS_PATH)
    if not base:
        raise SystemExit(f"missing corpus: {CORPUS_PATH}")
    pairs = [(p.n, p.f_bits, p.g_bits) for p in base]
    for _ in range(amplify):
        for p in base:
            tf = NpnTransform.random(p.n, rng)
            tg = NpnTransform.random(p.n, rng)
            pairs.append((p.n, tf.apply(p.f).bits, tg.apply(p.g).bits))
    return pairs


def random_pairs(seed: int, count: int, min_n: int = 3, max_n: int = 7):
    rng = random.Random(seed)
    names = [g for g, _ in (("equivalent", 35), ("inequivalent", 20),
                            ("weight-twin", 25), ("random", 20))]
    weights = [35, 20, 25, 20]
    out = []
    for _ in range(count):
        n = rng.randrange(min_n, max_n + 1)
        name = rng.choices(names, weights=weights)[0]
        pair = oracle_mod.PAIR_GENERATORS[name](n, rng)
        out.append((pair.f.n, pair.f.bits, pair.g.bits))
    return out


def _clear_caches() -> None:
    sens_mod._influence_vector.cache_clear()
    sens_mod._sensitivity_data.cache_clear()


def run_config(pairs, options):
    """One full pass: fresh tables per call, cold memo caches."""
    _clear_caches()
    verdicts = []
    tiers = Counter()
    t0 = time.perf_counter()
    for n, fb, gb in pairs:
        outcome = match_with_stats(TruthTable(n, fb), TruthTable(n, gb), options)
        verdicts.append(outcome.transform is not None)
        if outcome.stats.differentiated_by is not None:
            tiers[outcome.stats.differentiated_by] += 1
    return time.perf_counter() - t0, verdicts, tiers


def bench_workload(name, pairs, trials):
    best = {}
    tiers = Counter()
    verdicts = {}
    for label, options in (("dispatcher", DISPATCHER), ("pure_grm", PURE_GRM)):
        for _ in range(trials):
            dt, vs, ts = run_config(pairs, options)
            if label not in best or dt < best[label]:
                best[label] = dt
            verdicts[label] = vs
            if label == "dispatcher":
                tiers = ts
    if verdicts["dispatcher"] != verdicts["pure_grm"]:
        bad = [
            pairs[i]
            for i, (a, b) in enumerate(
                zip(verdicts["dispatcher"], verdicts["pure_grm"])
            )
            if a != b
        ]
        raise SystemExit(f"VERDICT MISMATCH on {name}: {bad[:5]}")
    speedup = best["pure_grm"] / best["dispatcher"]
    inequivalent = sum(1 for v in verdicts["dispatcher"] if not v)
    cell = {
        "pairs": len(pairs),
        "inequivalent": inequivalent,
        "dispatcher_seconds": best["dispatcher"],
        "pure_grm_seconds": best["pure_grm"],
        "speedup": speedup,
        "differentiated_by": dict(sorted(tiers.items())),
    }
    print(
        f"{name:11s}  {len(pairs):4d} pairs  "
        f"dispatcher {best['dispatcher'] * 1e3:8.1f}ms  "
        f"pure-grm {best['pure_grm'] * 1e3:8.1f}ms  "
        f"speedup {speedup:5.2f}x  tiers {dict(sorted(tiers.items()))}"
    )
    return cell


def run_guardrail(trials: int, seed: int) -> int:
    pairs = adversarial_pairs(seed, amplify=3)
    cell = bench_workload("adversarial", pairs, trials)
    if cell["speedup"] < 1.0:
        print(
            "GUARDRAIL FAILED: dispatcher slower than pure GRM on the "
            "adversarial corpus",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seed", type=int, default=11)
    ap.add_argument("--trials", type=int, default=3, help="best-of trials per side")
    ap.add_argument("--amplify", type=int, default=8,
                    help="random-transform copies of each corpus pair")
    ap.add_argument("--random-pairs", type=int, default=400)
    ap.add_argument("--quick", action="store_true",
                    help="smaller workloads, no acceptance gate")
    ap.add_argument("--guardrail", action="store_true",
                    help="CI mode: adversarial cell only, fail if dispatcher is slower")
    ap.add_argument("--out", default=None, help="JSON output path")
    args = ap.parse_args(argv)

    if args.guardrail:
        return run_guardrail(max(args.trials, 3), args.seed)

    amplify = 2 if args.quick else args.amplify
    n_random = 100 if args.quick else args.random_pairs
    cells = {
        "adversarial": bench_workload(
            "adversarial", adversarial_pairs(args.seed, amplify), args.trials
        ),
        "random": bench_workload(
            "random", random_pairs(args.seed + 1, n_random), args.trials
        ),
    }

    report = {
        "benchmark": "bench_signatures",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "seed": args.seed,
        "trials": args.trials,
        "amplify": amplify,
        "corpus": str(CORPUS_PATH.relative_to(CORPUS_PATH.parents[2])),
        "configs": {
            "dispatcher": "MatchOptions() [tier dispatch on, all families]",
            "pure_grm": "use_tier_dispatch=False, families=(weights,vic,inc,primes)",
        },
        "cells": cells,
    }
    out = Path(args.out) if args.out else Path(__file__).resolve().parents[1] / "BENCH_signatures.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if args.quick:
        return 0
    failed = False
    if cells["adversarial"]["speedup"] < ACCEPT_ADVERSARIAL:
        print(
            f"WARNING: adversarial speedup below {ACCEPT_ADVERSARIAL}x",
            file=sys.stderr,
        )
        failed = True
    if cells["random"]["speedup"] < ACCEPT_RANDOM:
        print(
            f"WARNING: dispatcher slower than pure GRM on random pairs "
            f"(< {ACCEPT_RANDOM}x)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
