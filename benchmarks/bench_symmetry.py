"""Section 5 claim — all four symmetry types from ≤ n GRM forms.

The paper's pitch: the conventional method checks one symmetry type per
variable pair per cofactor comparison; the GRM method reads all four
types for *every* pair off at most n forms, and total symmetry becomes
simple arithmetic on cube counts (Theorem 8).  This harness times the
GRM route against the conventional pairwise checker (truth-table and
BDD variants) and the arithmetic total-symmetry check against the
pairwise one.
"""

from __future__ import annotations

import random
import time

import pytest

from _report import emit, emit_header
from repro.baselines import naive_symmetry
from repro.boolfunc.random_gen import random_symmetric
from repro.boolfunc.truthtable import TruthTable
from repro.core import symmetry as sym
from repro.core.polarity import decide_polarity_primary
from repro.grm.forms import Grm


def _workload(n: int, count: int, seed: int):
    rng = random.Random(seed)
    funcs = []
    for k in range(count):
        if k % 3 == 0:
            # plant a symmetric pair so detection has positives to find
            i, j = rng.sample(range(n), 2)
            from repro.boolfunc.random_gen import random_with_planted_symmetry

            funcs.append(
                random_with_planted_symmetry(
                    n, (i, j), rng.choice(sym.ALL_SYMMETRY_TYPES), rng
                )
            )
        else:
            funcs.append(TruthTable.random(n, rng))
    return funcs


@pytest.mark.parametrize("n", [6, 8, 10])
def test_all_pairs_via_grm(benchmark, n):
    funcs = _workload(n, 6, seed=n)
    benchmark(lambda: [sym.all_pair_symmetries_via_grm(f) for f in funcs])


@pytest.mark.parametrize("n", [6, 8, 10])
def test_all_pairs_naive(benchmark, n):
    funcs = _workload(n, 6, seed=n)
    benchmark(lambda: [naive_symmetry.all_pair_symmetries_naive(f) for f in funcs])


@pytest.mark.parametrize("n", [6, 8])
def test_all_pairs_bdd(benchmark, n):
    funcs = _workload(n, 6, seed=n)
    benchmark(lambda: [naive_symmetry.all_pair_symmetries_bdd(f) for f in funcs])


def test_symmetry_speed_table(benchmark):
    def run():
        rows = []
        for n in (6, 8, 10, 12):
            funcs = _workload(n, 4, seed=77 + n)
            t0 = time.perf_counter()
            grm_res = [sym.all_pair_symmetries_via_grm(f) for f in funcs]
            grm_t = time.perf_counter() - t0
            t0 = time.perf_counter()
            naive_res = [naive_symmetry.all_pair_symmetries_naive(f) for f in funcs]
            naive_t = time.perf_counter() - t0
            t0 = time.perf_counter()
            bdd_res = [naive_symmetry.all_pair_symmetries_bdd(f) for f in funcs]
            bdd_t = time.perf_counter() - t0
            assert grm_res == naive_res == bdd_res
            rows.append((n, grm_t, naive_t, bdd_t))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header(
        "Symmetry detection — GRM family (≤ n forms) vs conventional pairwise"
    )
    emit(
        f"{'n':>3} {'GRM (s)':>10} {'pairwise-tt (s)':>16} "
        f"{'pairwise-BDD (s)':>17} {'vs BDD':>7}"
    )
    for n, grm_t, naive_t, bdd_t in rows:
        emit(
            f"{n:>3} {grm_t:>10.4f} {naive_t:>16.4f} "
            f"{bdd_t:>17.4f} {bdd_t / grm_t:>6.1f}x"
        )
    # The paper's claim: the GRM route beats the conventional
    # (decision-diagram-hosted) pairwise method, increasingly with n.
    assert rows[-1][3] > rows[-1][1]


def test_total_symmetry_theorem8(benchmark):
    """Theorem 8's arithmetic check vs exhaustive pairwise checking."""
    rng = random.Random(9)
    funcs = [random_symmetric(11, rng) for _ in range(8)]
    funcs += [TruthTable.random(11, rng) for _ in range(8)]
    grms = [
        Grm.from_truthtable(f, decide_polarity_primary(f).polarity) for f in funcs
    ]

    def arithmetic():
        return [sym.is_totally_symmetric_grm(g) for g in grms]

    verdicts = benchmark(arithmetic)
    # Sound: whatever the arithmetic check accepts is truly symmetric.
    for f, v in zip(funcs, verdicts):
        if v:
            assert sym.is_totally_symmetric(f)
    assert sum(verdicts) >= 8  # all planted symmetric functions found


def test_total_symmetry_naive_baseline(benchmark):
    rng = random.Random(9)
    funcs = [random_symmetric(11, rng) for _ in range(8)]
    benchmark(lambda: [naive_symmetry.is_totally_symmetric_naive(f) for f in funcs])
