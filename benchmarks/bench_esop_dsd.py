"""ESOP minimization and DSD shapes — XOR-form extensions.

Two extensions of the paper's AND/XOR theme, benchmarked on the suite:

* the exorcism-style ESOP minimizer against the best fixed-polarity
  (GRM) cover — how much the mixed-polarity freedom buys;
* disjoint-support decomposition as a matching prefilter — the DSD
  shape is an npn-invariant signature computed without any search.
"""

from __future__ import annotations

import random
import time

import pytest

from _report import emit, emit_header
from repro.benchcircuits import build_circuit
from repro.boolfunc.dsd import decompose, shape_signature
from repro.boolfunc.transform import NpnTransform
from repro.boolfunc.truthtable import TruthTable
from repro.grm.esop import minimize_esop
from repro.grm.minimize import minimize_exact


@pytest.mark.parametrize("n", [6, 8, 10])
def test_esop_minimization(benchmark, n):
    f = TruthTable.random(n, random.Random(n))
    result = benchmark(minimize_esop, f)
    assert result.to_truthtable(n) == f


@pytest.mark.parametrize("n", [6, 8, 10])
def test_dsd_decomposition(benchmark, n):
    f = TruthTable.random(n, random.Random(n))
    result = benchmark(decompose, f)
    assert result.to_truthtable() == f


def test_esop_vs_grm_table(benchmark):
    cases = []
    for name in ("9sym", "rd73", "z4ml", "con1", "misex1", "x2"):
        circuit = build_circuit(name)
        for out in circuit.outputs[:2]:
            if 2 <= out.table.n <= 10:
                cases.append((f"{name}.{out.name}", out.table))

    def run():
        rows = []
        for label, tt in cases:
            grm = minimize_exact(tt).cube_count
            esop = minimize_esop(tt)
            assert esop.to_truthtable(tt.n) == tt
            rows.append((label, tt.n, grm, esop.cube_count))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("ESOP vs best fixed-polarity GRM — cube counts")
    emit(f"{'function':<12} {'n':>3} {'GRM min':>8} {'ESOP':>6} {'gain':>7}")
    for label, n, grm, esop in rows:
        gain = f"{(1 - esop / grm) * 100:>5.0f}%" if grm else "  -"
        emit(f"{label:<12} {n:>3} {grm:>8} {esop:>6} {gain:>7}")
        assert esop <= grm


def test_dsd_prefilter_table(benchmark):
    """DSD shape as a matching prefilter: invariant (no false negatives)
    and discriminating across benchmark outputs."""
    rng = random.Random(9)
    functions = []
    for name in ("rd73", "z4ml", "con1", "misex1", "cm138a"):
        for out in build_circuit(name).outputs:
            if out.table.n <= 9:
                functions.append(out.table)

    def run():
        shapes = {}
        t0 = time.perf_counter()
        for f in functions:
            shapes.setdefault(shape_signature(decompose(f)), []).append(f)
        shape_t = time.perf_counter() - t0
        # Invariance spot-check on scrambled copies.
        for f in functions[:10]:
            g = NpnTransform.random(f.n, rng).apply(f)
            assert shape_signature(decompose(g)) == shape_signature(decompose(f))
        return len(functions), len(shapes), shape_t

    total, classes, shape_t = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("DSD shapes as a matching prefilter")
    emit(f"functions: {total}, distinct shapes: {classes}, "
         f"{shape_t / total * 1e3:.2f} ms per function")
    assert classes > 1
