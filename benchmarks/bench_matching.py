"""Headline claim — npn matching with (usually) one GRM per function.

The paper's central claim (Sections 6 and 8): most npn-equivalence
checks need a single GRM form per function, with at most 2n forms in
the worst case.  This harness measures matcher throughput and the
number of GRM forms built across workloads:

* random equivalent pairs (a hidden transform to recover),
* random independent pairs (almost always inequivalent),
* the hard all-balanced family (linear-trick + completions territory),
* totally symmetric functions (symmetry collapse).
"""

from __future__ import annotations

import random
from typing import List

import pytest

from _report import emit, emit_header
from repro.boolfunc import ops
from repro.boolfunc.random_gen import random_balanced_function
from repro.boolfunc.transform import NpnTransform, random_equivalent_pair
from repro.boolfunc.truthtable import TruthTable
from repro.core.matcher import match, match_with_stats


def _equivalent_workload(n: int, count: int, seed: int):
    rng = random.Random(seed)
    return [random_equivalent_pair(n, rng)[:2] for _ in range(count)]


def _random_workload(n: int, count: int, seed: int):
    rng = random.Random(seed)
    return [
        (TruthTable.random(n, rng), TruthTable.random(n, rng)) for _ in range(count)
    ]


@pytest.mark.parametrize("n", [4, 6, 8, 10])
def test_match_equivalent_pairs(benchmark, n):
    pairs = _equivalent_workload(n, 20, seed=n)

    def run():
        hits = 0
        for f, g in pairs:
            if match(f, g) is not None:
                hits += 1
        return hits

    assert benchmark(run) == len(pairs)


@pytest.mark.parametrize("n", [4, 6, 8, 10])
def test_match_random_pairs(benchmark, n):
    pairs = _random_workload(n, 20, seed=100 + n)

    def run():
        return sum(1 for f, g in pairs if match(f, g) is not None)

    benchmark(run)


def test_match_hard_balanced_family(benchmark):
    rng = random.Random(7)
    pairs = []
    for _ in range(10):
        f = random_balanced_function(6, rng)
        pairs.append((f, NpnTransform.random(6, rng).apply(f)))

    def run():
        return sum(1 for f, g in pairs if match(f, g) is not None)

    assert benchmark(run) == len(pairs)


def test_match_symmetric_functions(benchmark):
    rng = random.Random(11)
    f = ops.majority(11)
    g = NpnTransform.random(11, rng).apply(f)
    result = benchmark(match, f, g)
    assert result is not None


def test_grm_count_statistics(benchmark, capsys):
    """How many GRM forms does matching actually build? (paper: usually
    one per function, ≤ 2n worst case)."""
    rng = random.Random(3)

    def collect():
        rows = []
        for n in (4, 6, 8):
            grms: List[int] = []
            completions: List[int] = []
            for _ in range(40):
                f, g, _ = random_equivalent_pair(n, rng)
                out = match_with_stats(f, g)
                assert out.transform is not None
                grms.append(out.stats.grms_built)
                completions.append(out.stats.hard_completions_tried)
            rows.append((n, grms, completions))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    emit_header("Headline claim — GRM forms built per npn match (paper: usually 1+1)")
    emit(f"{'n':>3} {'avg GRMs':>9} {'max GRMs':>9} {'2n bound':>9} {'avg completions':>16}")
    for n, grms, completions in rows:
        emit(
            f"{n:>3} {sum(grms) / len(grms):>9.2f} {max(grms):>9} {2 * n:>9} "
            f"{sum(completions) / len(completions):>16.2f}"
        )
        assert max(grms) <= 4 * n  # generous sanity bound on the claim
