"""Classification — all n-variable functions into npn classes.

A known-answer stress test of the whole pipeline: the 2^(2^n) functions
of n variables fall into 2, 4, 14, 222 npn classes for n = 1..4.  The
GRM-driven canonical form must reproduce these counts exactly, and do
so far faster than exhaustive canonicalization (which applies all
n!·2^(n+1) transforms per function).
"""

from __future__ import annotations

import time

import pytest

from _report import emit, emit_header
from repro.baselines import exhaustive
from repro.boolfunc.truthtable import TruthTable
from repro.core.canonical import canonical_form, npn_class_count

KNOWN_COUNTS = {1: 2, 2: 4, 3: 14, 4: 222}


@pytest.mark.parametrize("n", [1, 2, 3])
def test_classify_all_functions_small(benchmark, n):
    count = benchmark(npn_class_count, n)
    assert count == KNOWN_COUNTS[n]


def test_classify_all_4var_functions(benchmark):
    """The full 65536-function, 222-class run (single round)."""
    count = benchmark.pedantic(npn_class_count, args=(4,), rounds=1, iterations=1)
    emit_header("NPN classification — all 65536 4-variable functions")
    emit(f"classes found: {count} (known value: 222)")
    assert count == KNOWN_COUNTS[4]


def test_grm_vs_exhaustive_canonicalization_speed(benchmark):
    """Per-function canonicalization cost, GRM vs exhaustive, n = 3, 4."""

    def run():
        rows = []
        for n in (3, 4):
            funcs = [TruthTable(n, (0x9E3779B1 * k) & ((1 << (1 << n)) - 1)) for k in range(64)]
            t0 = time.perf_counter()
            ours = [canonical_form(f)[0] for f in funcs]
            grm_t = time.perf_counter() - t0
            t0 = time.perf_counter()
            theirs = [exhaustive.canonicalize(f)[0] for f in funcs]
            exh_t = time.perf_counter() - t0
            # The two canonical forms differ as representatives but must
            # induce the same partition into classes.
            assert len(set(c.bits for c in ours)) == len(set(c.bits for c in theirs))
            rows.append((n, grm_t / 64 * 1e3, exh_t / 64 * 1e3))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("Canonicalization cost per function (ms)")
    emit(f"{'n':>3} {'GRM':>10} {'exhaustive':>12} {'speedup':>9}")
    for n, grm_ms, exh_ms in rows:
        emit(f"{n:>3} {grm_ms:>10.3f} {exh_ms:>12.3f} {exh_ms / grm_ms:>8.1f}x")
