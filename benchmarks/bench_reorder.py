"""BDD variable ordering — the substrate's classic sensitivity.

Reproduces the textbook multiplexer result on the suite's exact mux
circuits: data-inputs-on-top is exponential, selects-on-top is linear,
and sifting finds the good order automatically.  Context for hosting
FDDs in an ROBDD package (Section 3.2)."""

from __future__ import annotations

import random

import pytest

from _report import emit, emit_header
from repro.bdd.reorder import bdd_size_for_order, natural_order, sift_order
from repro.benchcircuits import build_circuit
from repro.boolfunc.truthtable import TruthTable


def test_mux8_sifting(benchmark):
    mux = build_circuit("cm151a").outputs[0].table
    result = benchmark(sift_order, mux, None, 2)
    assert result.size <= natural_order(mux).size


@pytest.mark.parametrize("n", [8, 10, 12])
def test_random_function_sift(benchmark, n):
    f = TruthTable.random(n, random.Random(n))
    benchmark(sift_order, f, None, 1)


def test_mux_order_table(benchmark):
    def run():
        rows = []
        for name, sel in (("cm151a", [8, 9, 10, 11]), ("cm150a", [16, 17, 18, 19, 20])):
            mux = build_circuit(name).outputs[0].table
            nat = natural_order(mux).size
            sel_first = bdd_size_for_order(
                mux, sel + [v for v in range(mux.n) if v not in sel]
            )
            rows.append((name, mux.n, nat, sel_first))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("BDD ordering — multiplexers, data-first vs selects-first")
    emit(f"{'circuit':<10} {'n':>3} {'data first':>11} {'selects first':>14} {'ratio':>7}")
    for name, n, nat, sel in rows:
        emit(f"{name:<10} {n:>3} {nat:>11} {sel:>14} {nat / sel:>6.1f}x")
        assert sel < nat
