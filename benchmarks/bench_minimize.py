"""FPRM minimization — the companion experiment (reference [11]).

The paper's canonical forms take the *M-pole* polarity; the authors'
GLSVLSI'93 work minimizes the FPRM cube count over all polarities.
This harness measures the Gray-code exact sweep and the greedy
hill-climb, and reports how close the matcher's M-pole vector comes to
the true minimum on the benchmark functions — an ablation of the
polarity-selection design choice.
"""

from __future__ import annotations

import random

import pytest

from _report import emit, emit_header
from repro.benchcircuits import build_circuit
from repro.boolfunc.truthtable import TruthTable
from repro.core.polarity import decide_polarity_primary
from repro.grm.forms import Grm
from repro.grm.minimize import minimize_exact, minimize_greedy


@pytest.mark.parametrize("n", [8, 10, 12, 14])
def test_exact_sweep(benchmark, n):
    rng = random.Random(n)
    f = TruthTable.random(n, rng)
    result = benchmark(minimize_exact, f)
    assert result.polarities_visited == 1 << n


@pytest.mark.parametrize("n", [8, 12, 16])
def test_greedy_hill_climb(benchmark, n):
    rng = random.Random(n)
    f = TruthTable.random(n, rng)
    benchmark(minimize_greedy, f)


def test_mpole_vs_minimum_table(benchmark):
    """How many cubes does the M-pole polarity give up vs the optimum?"""
    cases = []
    for name in ("rd73", "z4ml", "con1", "9sym", "misex1", "x2"):
        circuit = build_circuit(name)
        for out in circuit.outputs[:3]:
            if out.table.n <= 14:
                cases.append((f"{name}.{out.name}", out.table))

    def run():
        rows = []
        for label, tt in cases:
            mpole = decide_polarity_primary(tt).polarity
            mpole_cubes = Grm.from_truthtable(tt, mpole).num_cubes()
            exact = minimize_exact(tt)
            greedy = minimize_greedy(tt)
            rows.append((label, tt.n, mpole_cubes, greedy.cube_count, exact.cube_count))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("FPRM minimization — M-pole polarity vs greedy vs exact minimum")
    emit(f"{'function':<12} {'n':>3} {'M-pole':>8} {'greedy':>8} {'minimum':>8} {'overhead':>9}")
    for label, n, mp, gr, ex in rows:
        emit(f"{label:<12} {n:>3} {mp:>8} {gr:>8} {ex:>8} {mp / max(1, ex):>8.2f}x")
        assert ex <= gr <= mp or gr <= mp  # greedy sound; exact is the floor
