"""Persistent class-store benchmark: cold vs warm classification, and
store-indexed library binding vs the linear matcher baseline.

Standalone (argparse, no pytest) so CI can run it as a smoke step::

    PYTHONPATH=src python benchmarks/bench_store.py --quick

Scenarios:

* ``cold_vs_warm`` — the store's reason to exist.  Cold: an engine over
  an empty store classifies a repeated-classes batch (paying every
  canonicalization, then writing the classes back).  Warm: a *fresh*
  engine over the now-populated store classifies new random transforms
  of the same pool — every class is seeded from disk, so nearly every
  function resolves by membership probe (a rare probe budget bailout
  still pays a canonicalization) and the warm pass must beat the cold.
* ``reopen_query`` — store open + per-function ``store_lookup`` latency
  against a reopened store (the `grm-match lib query` path).
* ``bind_parity`` — `CellLibrary.from_store` witness-replay binding vs
  `bind_linear` (canonicalize + full matcher per candidate) over random
  targets of every cell class; asserts cost parity while timing both.

Results are written to ``BENCH_store.json`` (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.boolfunc.transform import NpnTransform
from repro.boolfunc.truthtable import TruthTable
from repro.core.canonical import canonical_form
from repro.engine import ClassificationEngine, EngineOptions, store_lookup
from repro.grm.transform import fprm_coefficients
from repro.library import CellLibrary, default_cells
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.store import ClassStore

N_VARS = 5


def make_pool(size: int, rng: random.Random):
    """One random function per ~4 batch slots: at n=5 these are almost
    all distinct classes, so the cold pass pays a canonicalization per
    class while the warm pass pays only membership probes."""
    return [TruthTable.random(N_VARS, rng) for _ in range(max(48, size // 4))]


def transformed_batch(pool, size: int, rng: random.Random):
    """Fresh random NPN transforms of pool functions — same classes,
    (almost surely) new bit patterns, so nothing is an exact repeat."""
    return [
        NpnTransform.random(N_VARS, rng).apply(rng.choice(pool))
        for _ in range(size)
    ]


def fresh_tables(batch):
    """Rebuild tables so lazy per-object caches never leak between runs."""
    return [TruthTable(f.n, f.bits) for f in batch]


def classify_with_store(batch, store, workers=0):
    fprm_coefficients.cache_clear()
    tables = fresh_tables(batch)
    engine = ClassificationEngine(EngineOptions(workers=workers), store=store)
    t0 = time.perf_counter()
    result = engine.classify(tables)
    return time.perf_counter() - t0, result


def baseline_keys(batch):
    fprm_coefficients.cache_clear()
    return [canonical_form(f)[0].bits for f in fresh_tables(batch)]


def same_grouping(base_keys, result):
    groups = {}
    for i, k in enumerate(base_keys):
        groups.setdefault(k, []).append(i)
    return {k.key: v for k, v in result.members.items()} == groups


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size", type=int, default=2048, help="batch size")
    ap.add_argument("--seed", type=int, default=11)
    ap.add_argument("--bind-targets", type=int, default=400, dest="bind_targets")
    ap.add_argument("--quick", action="store_true", help="small batches")
    ap.add_argument("--out", default=None, help="JSON output path")
    args = ap.parse_args(argv)

    size = 256 if args.quick else args.size
    bind_targets = 80 if args.quick else args.bind_targets
    rng = random.Random(args.seed)
    report = {
        "benchmark": "bench_store",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "batch_size": size,
        "pool_size": max(48, size // 4),
        "n_vars": N_VARS,
        "seed": args.seed,
        "scenarios": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        store_path = Path(tmp) / "classes"

        # -- cold vs warm -------------------------------------------------
        pool = make_pool(size, rng)
        cold_batch = transformed_batch(pool, size, rng)
        warm_batch = transformed_batch(pool, size, rng)
        cold_keys = baseline_keys(cold_batch)
        warm_keys = baseline_keys(warm_batch)

        with ClassStore(store_path, num_shards=32) as store:
            t_cold, cold = classify_with_store(cold_batch, store)
        assert same_grouping(cold_keys, cold), "cold grouping != baseline"

        with ClassStore(store_path, create=False) as store:
            t_warm, warm = classify_with_store(warm_batch, store)
        assert same_grouping(warm_keys, warm), "warm grouping != baseline"
        # Probe budget bailouts may canonicalize a stray function or two;
        # the store must still absorb (nearly) the whole batch.
        assert warm.stats.canonicalizations <= max(2, size // 20), (
            f"warm pass canonicalized {warm.stats.canonicalizations} times"
        )
        assert warm.stats.store_hits > 0
        speedup = t_cold / t_warm
        report["scenarios"]["cold_vs_warm"] = {
            "cold_seconds": t_cold,
            "warm_seconds": t_warm,
            "speedup": speedup,
            "classes": cold.num_classes,
            "cold_stats": cold.stats.as_dict(),
            "warm_stats": warm.stats.as_dict(),
        }
        print(
            f"cold_vs_warm: cold {t_cold:.3f}s warm {t_warm:.3f}s "
            f"speedup {speedup:.2f}x ({cold.num_classes} classes, "
            f"warm canonicalizations={warm.stats.canonicalizations})"
        )

        # -- reopen + per-function query latency --------------------------
        fprm_coefficients.cache_clear()
        queries = fresh_tables(transformed_batch(pool, min(size, 256), rng))
        t0 = time.perf_counter()
        reopened = ClassStore(store_path, create=False)
        hits = sum(1 for f in queries if store_lookup(reopened, f) is not None)
        t_query = time.perf_counter() - t0
        report["scenarios"]["reopen_query"] = {
            "queries": len(queries),
            "hits": hits,
            "seconds": t_query,
            "per_query_ms": 1000.0 * t_query / len(queries),
        }
        print(
            f"reopen_query: {hits}/{len(queries)} hits in {t_query:.3f}s "
            f"({1000.0 * t_query / len(queries):.3f} ms/query)"
        )

        # -- library binding: witness replay vs linear matcher ------------
        lib = CellLibrary()
        cell_store_path = Path(tmp) / "cells"
        with ClassStore(cell_store_path, num_shards=16) as cell_store:
            lib.build_store(cell_store)
            warm_lib = CellLibrary.from_store(cell_store)

            cells = default_cells()
            targets = [
                NpnTransform.random(c.n_inputs, rng).apply(c.function)
                for c in (rng.choice(cells) for _ in range(bind_targets))
            ]

            fprm_coefficients.cache_clear()
            t0 = time.perf_counter()
            slow = [lib.bind_linear(f) for f in fresh_tables(targets)]
            t_linear = time.perf_counter() - t0

            fprm_coefficients.cache_clear()
            t0 = time.perf_counter()
            fast = [warm_lib.bind(f) for f in fresh_tables(targets)]
            t_store = time.perf_counter() - t0

        for f, a, b in zip(targets, fast, slow):
            assert (a is None) == (b is None)
            assert a.cell.area == b.cell.area
            assert a.transform.apply(a.cell.function) == f
        report["scenarios"]["bind_parity"] = {
            "targets": bind_targets,
            "linear_seconds": t_linear,
            "store_seconds": t_store,
            "speedup": t_linear / t_store,
        }
        print(
            f"bind_parity: linear {t_linear:.3f}s store {t_store:.3f}s "
            f"speedup {t_linear / t_store:.2f}x ({bind_targets} targets)"
        )

        # -- metrics snapshot ---------------------------------------------
        # One extra instrumented warm pass + store maintenance, kept out
        # of the timed scenarios so observability cannot skew them.
        registry = MetricsRegistry()
        obs_runtime.enable(metrics=registry)
        try:
            with ClassStore(store_path, create=False) as store:
                classify_with_store(warm_batch, store)
                store.verify()
            with ClassStore(cell_store_path, create=False) as cell_store:
                CellLibrary.from_store(cell_store).bind_all(fresh_tables(targets))
        finally:
            obs_runtime.disable()
        report["metrics_snapshot"] = registry.snapshot()

    out = Path(args.out) if args.out else Path(__file__).resolve().parents[1] / "BENCH_store.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if not args.quick and report["scenarios"]["cold_vs_warm"]["speedup"] < 1.5:
        print("WARNING: warm pass not meaningfully faster than cold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
