"""Seeded load harness for the matching daemon.

Standalone (argparse, no pytest) so CI can run it as a smoke step::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick

The workload is the shared seeded hot/cold request mix
(:func:`repro.testing.workloads.make_traffic_mix`): 80% *hot* requests
drawn from a small pool of base functions (half disguised by random NPN
transforms — the library-matching shape where dedup, caching, and
membership probes pay), 20% *cold* uniform-random tables.

For each concurrency level the harness boots a fresh in-process
:class:`MatchServer` (cold caches, deterministic workload slice per
worker thread), drives it with ``concurrency`` blocking clients, and
records client-side wall-time percentiles (exact, from the recorded
per-request latencies — not the server's bucketed histograms) plus the
server's own coalescing counters.  Each level runs twice: micro-batching
on (the serving default) and off (``max_batch=1, max_wait=0`` through
the same code path), and the throughput margin between the two arms is
recorded — the number that justifies the batching window's existence.

Results are written to ``BENCH_serve.json`` (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import threading
import time
from pathlib import Path

from repro.serve import MatchServer, ServeConfig, ServerThread
from repro.serve.client import MatchClient
from repro.testing.workloads import DEFAULT_N_VARS, DEFAULT_POOL_SIZE, make_traffic_mix


def percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def latency_summary(latencies) -> dict:
    ordered = sorted(latencies)
    return {
        "count": len(ordered),
        "mean_ms": (sum(ordered) / len(ordered)) * 1e3 if ordered else 0.0,
        "p50_ms": percentile(ordered, 0.50) * 1e3,
        "p99_ms": percentile(ordered, 0.99) * 1e3,
    }


def run_level(tagged, concurrency: int, batching: bool, serve_args: dict) -> dict:
    """Drive one fresh server with ``concurrency`` blocking clients."""
    config = ServeConfig(batching=batching, **serve_args)
    server = MatchServer(config=config)
    st = ServerThread(server).start()
    slices = [tagged[i::concurrency] for i in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)
    lock = threading.Lock()
    latencies = {"hot": [], "cold": []}
    errors = []

    def worker(slice_) -> None:
        try:
            with MatchClient(port=st.port) as client:
                barrier.wait()
                local = {"hot": [], "cold": []}
                for tag, table in slice_:
                    t0 = time.perf_counter()
                    client.classify(table)
                    local[tag].append(time.perf_counter() - t0)
            with lock:
                latencies["hot"].extend(local["hot"])
                latencies["cold"].extend(local["cold"])
        except Exception as exc:  # surfaced after join; must not hang the barrier
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(s,), daemon=True) for s in slices
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]
    with MatchClient(port=st.port) as client:
        stats = client.stats()
    st.stop()
    every = latencies["hot"] + latencies["cold"]
    return {
        "batching": batching,
        "concurrency": concurrency,
        "requests": len(tagged),
        "elapsed_seconds": elapsed,
        "throughput_rps": len(tagged) / elapsed if elapsed else 0.0,
        "latency": {
            "all": latency_summary(every),
            "hot": latency_summary(latencies["hot"]),
            "cold": latency_summary(latencies["cold"]),
        },
        "server": {
            "engine_batches": stats["batching"]["batches"],
            "engine_tables": stats["batching"]["tables"],
            "mean_batch_fill": stats["batching"]["mean_fill"],
            "overloaded": stats["counters"].get("serve.overloaded", 0),
        },
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=600, help="requests per level")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument(
        "--levels",
        type=int,
        nargs="+",
        default=[4, 16, 32],
        help="concurrency levels (client thread counts)",
    )
    ap.add_argument("--hot-fraction", type=float, default=0.8, dest="hot_fraction")
    ap.add_argument("--max-batch", type=int, default=128, dest="max_batch")
    ap.add_argument(
        "--max-wait-ms", type=float, default=2.0, dest="max_wait_ms"
    )
    ap.add_argument(
        "--quick", action="store_true", help="small request count per level"
    )
    ap.add_argument("--out", default=None, help="JSON output path")
    args = ap.parse_args(argv)

    requests = 120 if args.quick else args.requests
    serve_args = {"max_batch": args.max_batch, "max_wait": args.max_wait_ms / 1e3}
    report = {
        "benchmark": "bench_serve",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "seed": args.seed,
        "requests_per_level": requests,
        "hot_fraction": args.hot_fraction,
        "pool_size": DEFAULT_POOL_SIZE,
        "n_vars": DEFAULT_N_VARS,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "levels": {},
    }

    margins = {}
    for concurrency in args.levels:
        # identical seeded mix for both arms of this level
        tagged = make_traffic_mix(
            requests, random.Random(args.seed), hot_fraction=args.hot_fraction
        )
        on = run_level(tagged, concurrency, batching=True, serve_args=serve_args)
        off = run_level(tagged, concurrency, batching=False, serve_args=serve_args)
        margin = on["throughput_rps"] / off["throughput_rps"]
        margins[concurrency] = margin
        report["levels"][str(concurrency)] = {
            "batching_on": on,
            "batching_off": off,
            "batching_margin": margin,
        }
        print(
            f"concurrency={concurrency}: on {on['throughput_rps']:.0f} rps "
            f"(p50 {on['latency']['all']['p50_ms']:.2f} ms, "
            f"p99 {on['latency']['all']['p99_ms']:.2f} ms, "
            f"fill {on['server']['mean_batch_fill']:.1f}) | "
            f"off {off['throughput_rps']:.0f} rps "
            f"(p50 {off['latency']['all']['p50_ms']:.2f} ms, "
            f"p99 {off['latency']['all']['p99_ms']:.2f} ms) | "
            f"margin {margin:.2f}x"
        )

    # Batching pays where it is designed to pay: under concurrency.  At
    # trivial concurrency the window is pure added latency (nothing to
    # coalesce), so the regression gate is the HIGHEST level's margin.
    top = max(margins) if margins else None
    report["batching_margin_at_top_concurrency"] = margins.get(top)
    out = (
        Path(args.out)
        if args.out
        else Path(__file__).resolve().parents[1] / "BENCH_serve.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if not args.quick and top is not None and margins[top] < 1.0:
        print(
            "WARNING: batching lost to batching-off at the highest "
            "concurrency level",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
