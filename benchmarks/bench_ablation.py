"""Ablations — what each ingredient of the method buys.

DESIGN.md calls out three design choices; each is switched off in turn:

* signature families (weights / VIC / INC / primes) gating and refining
  the search — measured by search nodes explored;
* symmetry pruning collapsing interchangeable variables;
* the enhanced (Weisfeiler-Lehman) incidence refinement vs the paper's
  static signatures — measured on the Table 1/2 hard circuits.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from _report import emit, emit_header
from repro.benchcircuits import build_circuit
from repro.boolfunc import ops
from repro.boolfunc.transform import NpnTransform, random_equivalent_pair
from repro.core.differentiate import differentiate_circuit
from repro.core.matcher import MatchOptions, match_with_stats

ABLATIONS: List[Tuple[str, MatchOptions]] = [
    ("full method", MatchOptions()),
    ("no symmetry pruning", MatchOptions(use_symmetry_pruning=False)),
    ("no incidence refinement", MatchOptions(use_incidence_refinement=False)),
    ("no prime signatures", MatchOptions(signature_families=("weights", "vic", "inc"))),
    ("no vic signatures", MatchOptions(signature_families=("weights", "inc", "primes"))),
    ("weights only", MatchOptions(signature_families=("weights",))),
    ("no signature gate", MatchOptions(use_function_signature_gate=False)),
]


def _workload(seed: int = 13):
    """Pairs engineered so that individual ingredients carry weight.

    Random functions are separated by cofactor weights alone, so the
    stress cases are *structured*: repeated sub-blocks (identical weight
    pairs everywhere), symmetric functions, and selector logic.
    """
    rng = random.Random(seed)
    pairs = [random_equivalent_pair(7, rng)[:2] for _ in range(6)]

    def scrambled(f):
        return (f, NpnTransform.random(f.n, rng).apply(f))

    # XOR of disjoint ANDs: every variable has the same weight pair.
    from repro.boolfunc.truthtable import TruthTable

    x = [TruthTable.var(8, i) for i in range(8)]
    xor_of_ands = (x[0] & x[1]) ^ (x[2] & x[3]) ^ (x[4] & x[5]) ^ (x[6] & x[7])
    pairs.append(scrambled(xor_of_ands))
    # Same but with one OR block breaking the uniformity only in INC.
    mixed = (x[0] & x[1]) ^ (x[2] & x[3]) ^ (x[4] & x[5] & x[6]) ^ x[7]
    pairs.append(scrambled(mixed))
    pairs.append(scrambled(ops.majority(7)))
    sel = build_circuit("cm151a").outputs[0].table
    pairs.append(scrambled(sel))
    return pairs


@pytest.mark.parametrize("label,options", ABLATIONS, ids=[a[0] for a in ABLATIONS])
def test_matcher_ablation(benchmark, label, options):
    pairs = _workload()

    def run():
        nodes = 0
        for f, g in pairs:
            out = match_with_stats(f, g, options)
            assert out.transform is not None
            nodes += out.stats.search_nodes
        return nodes

    benchmark(run)


def test_ablation_node_table(benchmark):
    pairs = _workload()

    def run():
        rows = []
        for label, options in ABLATIONS:
            nodes = leaves = 0
            for f, g in pairs:
                out = match_with_stats(f, g, options)
                assert out.transform is not None
                nodes += out.stats.search_nodes
                leaves += out.stats.leaf_checks
            rows.append((label, nodes, leaves))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("Matcher ablation — search nodes over the structured workload")
    emit(f"{'configuration':<26} {'nodes':>8} {'leaf checks':>12}")
    baseline = rows[0][1]
    for label, nodes, leaves in rows:
        emit(f"{label:<26} {nodes:>8} {leaves:>12}  ({nodes / baseline:.2f}x)")
    # The weights-only configuration (no GRM-derived signatures at all)
    # must pay visibly more search than the full method.
    weights_only = next(nodes for label, nodes, _ in rows if label == "weights only")
    assert weights_only >= baseline


def test_differentiation_mode_ablation(benchmark):
    """Paper-fidelity static signatures vs the enhanced WL refinement."""
    names = ["cm150a", "cm151a", "t481", "duke2", "misex3c", "pm1"]

    def run():
        rows = []
        for name in names:
            c = build_circuit(name)
            paper = differentiate_circuit(c.name, c.n_inputs, c.output_pairs(), mode="paper")
            enh = differentiate_circuit(c.name, c.n_inputs, c.output_pairs(), mode="enhanced")
            rows.append((name, paper.hard_outputs, enh.hard_outputs))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("Differentiation ablation — hard outputs, paper vs enhanced signatures")
    emit(f"{'circuit':<10} {'paper #h':>9} {'enhanced #h':>12}")
    for name, ph, eh in rows:
        emit(f"{name:<10} {ph:>9} {eh:>12}")
        assert eh <= ph  # the enhancement only removes hardness
