"""Observability overhead benchmark: what does instrumentation cost?

Standalone (argparse, no pytest) so CI can run it as a smoke step::

    PYTHONPATH=src python benchmarks/bench_obs.py --quick

Three measurements:

* ``disabled_primitives`` — per-call nanosecond cost of every hook in
  its disabled state (``scoped_timer``, ``@timed``, ``NULL_TRACER``
  span/event).  These are the only things instrumented code pays when
  observability is off.
* ``classify`` — the engine's repeated-classes microbenchmark run with
  observability off, with metrics only, and with metrics + a full
  ``TRACE_DETAIL`` tracer into a ``NullSink``.  The enabled deltas are
  the honest price of turning the layer on.
* ``disabled_overhead_pct`` — the disabled-mode cost estimate for the
  classify run: instrumentation sites actually hit (counted from the
  enabled run's own registry) times the measured per-site disabled
  cost, as a percentage of the disabled wall time.  The CI guardrail
  asserts this stays under 5%.

Results are written to ``BENCH_obs.json`` (override with ``--out``),
including the enabled run's full metrics snapshot.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

from repro.boolfunc.transform import NpnTransform
from repro.boolfunc.truthtable import TruthTable
from repro.engine import classify_batch
from repro.grm.transform import fprm_coefficients
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import scoped_timer, timed
from repro.obs.trace import NULL_TRACER, NullSink, TRACE_DETAIL, Tracer

POOL_SIZE = 32
N_VARS = 5

OVERHEAD_LIMIT_PCT = 5.0


def make_batch(size: int, rng: random.Random):
    pool = [TruthTable.random(N_VARS, rng) for _ in range(POOL_SIZE)]
    batch = []
    for _ in range(size):
        f = rng.choice(pool)
        if rng.random() < 0.5:
            batch.append(NpnTransform.random(N_VARS, rng).apply(f))
        else:
            batch.append(f)
    return batch


def fresh_tables(batch):
    return [TruthTable(f.n, f.bits) for f in batch]


# ----------------------------------------------------------------------
# Disabled-primitive microbenchmarks
# ----------------------------------------------------------------------

@timed("bench.noop")
def _instrumented_noop():
    return None


def _uninstrumented_noop():
    return None


def bench_disabled_primitives(iters: int):
    """Per-call cost (ns) of each hook while observability is off."""
    assert not obs_runtime.enabled

    def per_call(fn) -> float:
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        return (time.perf_counter() - t0) / iters * 1e9

    def scoped():
        with scoped_timer("bench.scope"):
            pass

    baseline_ns = per_call(_uninstrumented_noop)
    return {
        "iters": iters,
        "baseline_call_ns": baseline_ns,
        "scoped_timer_ns": per_call(scoped),
        "timed_decorator_ns": max(0.0, per_call(_instrumented_noop) - baseline_ns),
        "null_span_ns": per_call(lambda: NULL_TRACER.span("s")),
        "null_event_ns": per_call(lambda: NULL_TRACER.event("e")),
        "enabled_branch_ns": per_call(lambda: obs_runtime.enabled and None),
    }


# ----------------------------------------------------------------------
# End-to-end classify under three observability states
# ----------------------------------------------------------------------

def run_classify(batch, trials: int) -> float:
    best = float("inf")
    for _ in range(trials):
        fprm_coefficients.cache_clear()
        tables = fresh_tables(batch)
        t0 = time.perf_counter()
        classify_batch(tables)
        best = min(best, time.perf_counter() - t0)
    return best


def site_count(registry: MetricsRegistry) -> int:
    """Instrumentation sites the classify workload actually hits.

    Counted from the enabled run's own registry: the ``@timed``
    functions fire a handful of checks per call, every search node in
    the matcher tests the detail gate a few times, and the engine adds
    a fixed set of per-batch counters.  Deliberately generous — the
    guardrail should overestimate the disabled cost, not flatter it.
    """
    canon_calls = registry.counter_value("canonical.canonical_form.calls")
    match_calls = registry.counter_value("matcher.calls")
    search_nodes = 0
    for entry in registry.snapshot()["histograms"]:
        if entry["name"] == "matcher.search_nodes":
            search_nodes = int(entry["sum"])
    engine_fixed = 64  # per-batch engine counter touches
    return int(6 * (canon_calls + match_calls) + 3 * search_nodes + engine_fixed)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size", type=int, default=2048, help="batch size")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--trials", type=int, default=3, help="best-of trials")
    ap.add_argument("--iters", type=int, default=200_000, help="primitive loop count")
    ap.add_argument("--quick", action="store_true", help="small batch, fewer iters")
    ap.add_argument("--out", default=None, help="JSON output path")
    args = ap.parse_args(argv)

    size = 256 if args.quick else args.size
    trials = 1 if args.quick else args.trials
    iters = 50_000 if args.quick else args.iters
    rng = random.Random(args.seed)
    obs_runtime.disable()

    report = {
        "benchmark": "bench_obs",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "batch_size": size,
        "n_vars": N_VARS,
        "seed": args.seed,
        "trials": trials,
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
    }

    # -- disabled primitives ---------------------------------------------
    prim = bench_disabled_primitives(iters)
    report["disabled_primitives"] = prim
    print(
        "disabled primitives (ns/call): "
        f"scoped_timer {prim['scoped_timer_ns']:.0f}, "
        f"timed {prim['timed_decorator_ns']:.0f}, "
        f"null span {prim['null_span_ns']:.0f}, "
        f"null event {prim['null_event_ns']:.0f}"
    )

    # -- classify: off / metrics / metrics+trace --------------------------
    batch = make_batch(size, rng)

    t_off = run_classify(batch, trials)

    registry = MetricsRegistry()
    obs_runtime.enable(metrics=registry)
    try:
        t_metrics = run_classify(batch, trials)
    finally:
        obs_runtime.disable()

    trace_registry = MetricsRegistry()
    obs_runtime.enable(
        trace=Tracer([NullSink()], level=TRACE_DETAIL), metrics=trace_registry
    )
    try:
        t_traced = run_classify(batch, trials)
    finally:
        obs_runtime.disable()

    sites = site_count(registry)
    per_site_ns = max(
        prim["scoped_timer_ns"],
        prim["timed_decorator_ns"],
        prim["null_span_ns"],
        prim["null_event_ns"],
        prim["enabled_branch_ns"],
    )
    disabled_overhead_pct = 100.0 * (sites * per_site_ns * 1e-9) / t_off

    report["classify"] = {
        "disabled_seconds": t_off,
        "metrics_seconds": t_metrics,
        "traced_seconds": t_traced,
        "metrics_overhead_pct": 100.0 * (t_metrics - t_off) / t_off,
        "traced_overhead_pct": 100.0 * (t_traced - t_off) / t_off,
        "instrumentation_sites": sites,
        "per_site_ns": per_site_ns,
        "disabled_overhead_pct": disabled_overhead_pct,
    }
    report["metrics_snapshot"] = registry.snapshot()

    print(
        f"classify: off {t_off:.3f}s, metrics {t_metrics:.3f}s "
        f"(+{report['classify']['metrics_overhead_pct']:.1f}%), "
        f"traced {t_traced:.3f}s "
        f"(+{report['classify']['traced_overhead_pct']:.1f}%)"
    )
    print(
        f"disabled overhead: {sites} sites x {per_site_ns:.0f}ns = "
        f"{disabled_overhead_pct:.3f}% of the disabled run "
        f"(limit {OVERHEAD_LIMIT_PCT}%)"
    )

    out = Path(args.out) if args.out else Path(__file__).resolve().parents[1] / "BENCH_obs.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if disabled_overhead_pct >= OVERHEAD_LIMIT_PCT:
        print(
            f"FAIL: disabled-mode overhead {disabled_overhead_pct:.2f}% "
            f">= {OVERHEAD_LIMIT_PCT}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
