"""Observability overhead benchmark: what does instrumentation cost?

Standalone (argparse, no pytest) so CI can run it as a smoke step::

    PYTHONPATH=src python benchmarks/bench_obs.py --quick

Three measurements:

* ``disabled_primitives`` — per-call nanosecond cost of every hook in
  its disabled state (``scoped_timer``, ``@timed``, ``NULL_TRACER``
  span/event).  These are the only things instrumented code pays when
  observability is off.
* ``classify`` — the engine's repeated-classes microbenchmark run with
  observability off, with metrics only, and with metrics + a full
  ``TRACE_DETAIL`` tracer into a ``NullSink``.  The enabled deltas are
  the honest price of turning the layer on.
* ``disabled_overhead_pct`` — the disabled-mode cost estimate for the
  classify run: instrumentation sites actually hit (counted from the
  enabled run's own registry) times the measured per-site disabled
  cost, as a percentage of the disabled wall time.  The CI guardrail
  asserts this stays under 5%.
* ``window`` — per-call cost of the sliding-window aggregator the
  serving stats ride on (counter inc, histogram observe, merged
  quantile reads) — these run on the server's hot request path.
* ``exposition`` — per-render cost of the Prometheus text exposition
  over a serving-shaped registry (what one ``GET /metrics`` scrape
  pays).

Results are written to ``BENCH_obs.json`` (override with ``--out``),
including the enabled run's full metrics snapshot.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

from repro.boolfunc.transform import NpnTransform
from repro.boolfunc.truthtable import TruthTable
from repro.engine import classify_batch
from repro.grm.transform import fprm_coefficients
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import scoped_timer, timed
from repro.obs.render import render_prometheus
from repro.obs.trace import NULL_TRACER, NullSink, TRACE_DETAIL, Tracer
from repro.obs.window import SlidingWindow

POOL_SIZE = 32
N_VARS = 5

OVERHEAD_LIMIT_PCT = 5.0


def make_batch(size: int, rng: random.Random):
    pool = [TruthTable.random(N_VARS, rng) for _ in range(POOL_SIZE)]
    batch = []
    for _ in range(size):
        f = rng.choice(pool)
        if rng.random() < 0.5:
            batch.append(NpnTransform.random(N_VARS, rng).apply(f))
        else:
            batch.append(f)
    return batch


def fresh_tables(batch):
    return [TruthTable(f.n, f.bits) for f in batch]


# ----------------------------------------------------------------------
# Disabled-primitive microbenchmarks
# ----------------------------------------------------------------------

@timed("bench.noop")
def _instrumented_noop():
    return None


def _uninstrumented_noop():
    return None


def bench_disabled_primitives(iters: int):
    """Per-call cost (ns) of each hook while observability is off."""
    assert not obs_runtime.enabled

    def per_call(fn) -> float:
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        return (time.perf_counter() - t0) / iters * 1e9

    def scoped():
        with scoped_timer("bench.scope"):
            pass

    baseline_ns = per_call(_uninstrumented_noop)
    return {
        "iters": iters,
        "baseline_call_ns": baseline_ns,
        "scoped_timer_ns": per_call(scoped),
        "timed_decorator_ns": max(0.0, per_call(_instrumented_noop) - baseline_ns),
        "null_span_ns": per_call(lambda: NULL_TRACER.span("s")),
        "null_event_ns": per_call(lambda: NULL_TRACER.event("e")),
        "enabled_branch_ns": per_call(lambda: obs_runtime.enabled and None),
    }


# ----------------------------------------------------------------------
# Sliding-window aggregator and exposition rendering
# ----------------------------------------------------------------------

LATENCY_EDGES = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0, 5.0,
)


def bench_window(iters: int, rng: random.Random):
    """Per-call cost (ns) of the windowed instruments on the hot path."""
    window = SlidingWindow(window_seconds=60.0, buckets=12)
    counter = window.counter("serve.requests")
    hist = window.histogram("serve.request_seconds", edges=LATENCY_EDGES, op="match")
    values = [rng.uniform(0.0001, 0.5) for _ in range(256)]

    t0 = time.perf_counter()
    for _ in range(iters):
        counter.inc()
    inc_ns = (time.perf_counter() - t0) / iters * 1e9

    t0 = time.perf_counter()
    for i in range(iters):
        hist.observe(values[i & 255])
    observe_ns = (time.perf_counter() - t0) / iters * 1e9

    reads = max(1, iters // 100)
    t0 = time.perf_counter()
    for _ in range(reads):
        hist.quantile(0.99)
    quantile_ns = (time.perf_counter() - t0) / reads * 1e9

    t0 = time.perf_counter()
    for _ in range(reads):
        counter.rate()
    rate_ns = (time.perf_counter() - t0) / reads * 1e9

    return {
        "iters": iters,
        "counter_inc_ns": inc_ns,
        "histogram_observe_ns": observe_ns,
        "quantile_read_ns": quantile_ns,
        "rate_read_ns": rate_ns,
    }


def bench_exposition(rng: random.Random):
    """Per-render cost of one /metrics scrape over a serving-shaped registry."""
    registry = MetricsRegistry()
    for op in ("ping", "classify", "match", "lookup", "stats"):
        registry.counter("serve.requests", op=op).inc(rng.randrange(1, 10_000))
        hist = registry.histogram("serve.request_seconds", edges=LATENCY_EDGES, op=op)
        for _ in range(64):
            hist.observe(rng.uniform(0.0001, 0.5))
    for code in ("ok", "bad_request", "overloaded"):
        registry.counter("serve.responses", code=code).inc(rng.randrange(1, 10_000))
    for tier in ("weights", "influence", "sensitivity", "grm", "equivalent"):
        registry.counter("serve.match_tier", tier=tier).inc(rng.randrange(1, 1000))
    registry.gauge("serve.queue_depth").set(17)

    snap = registry.snapshot()
    renders = 200
    t0 = time.perf_counter()
    for _ in range(renders):
        text = render_prometheus(registry.snapshot())
    render_us = (time.perf_counter() - t0) / renders * 1e6
    return {
        "renders": renders,
        "families": len({e["name"] for kind in ("counters", "gauges", "histograms")
                         for e in snap[kind]}),
        "output_bytes": len(text.encode()),
        "render_us": render_us,
    }


# ----------------------------------------------------------------------
# End-to-end classify under three observability states
# ----------------------------------------------------------------------

def run_classify(batch, trials: int) -> float:
    best = float("inf")
    for _ in range(trials):
        fprm_coefficients.cache_clear()
        tables = fresh_tables(batch)
        t0 = time.perf_counter()
        classify_batch(tables)
        best = min(best, time.perf_counter() - t0)
    return best


def site_count(registry: MetricsRegistry) -> int:
    """Instrumentation sites the classify workload actually hits.

    Counted from the enabled run's own registry: the ``@timed``
    functions fire a handful of checks per call, every search node in
    the matcher tests the detail gate a few times, and the engine adds
    a fixed set of per-batch counters.  Deliberately generous — the
    guardrail should overestimate the disabled cost, not flatter it.
    """
    canon_calls = registry.counter_value("canonical.canonical_form.calls")
    match_calls = registry.counter_value("matcher.calls")
    search_nodes = 0
    for entry in registry.snapshot()["histograms"]:
        if entry["name"] == "matcher.search_nodes":
            search_nodes = int(entry["sum"])
    engine_fixed = 64  # per-batch engine counter touches
    return int(6 * (canon_calls + match_calls) + 3 * search_nodes + engine_fixed)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size", type=int, default=2048, help="batch size")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--trials", type=int, default=3, help="best-of trials")
    ap.add_argument("--iters", type=int, default=200_000, help="primitive loop count")
    ap.add_argument("--quick", action="store_true", help="small batch, fewer iters")
    ap.add_argument("--out", default=None, help="JSON output path")
    args = ap.parse_args(argv)

    size = 256 if args.quick else args.size
    trials = 1 if args.quick else args.trials
    iters = 50_000 if args.quick else args.iters
    rng = random.Random(args.seed)
    obs_runtime.disable()

    report = {
        "benchmark": "bench_obs",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "batch_size": size,
        "n_vars": N_VARS,
        "seed": args.seed,
        "trials": trials,
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
    }

    # -- disabled primitives ---------------------------------------------
    prim = bench_disabled_primitives(iters)
    report["disabled_primitives"] = prim
    print(
        "disabled primitives (ns/call): "
        f"scoped_timer {prim['scoped_timer_ns']:.0f}, "
        f"timed {prim['timed_decorator_ns']:.0f}, "
        f"null span {prim['null_span_ns']:.0f}, "
        f"null event {prim['null_event_ns']:.0f}"
    )

    # -- windowed instruments and /metrics rendering -----------------------
    win = bench_window(iters // 2, rng)
    report["window"] = win
    print(
        "window (ns/call): "
        f"counter inc {win['counter_inc_ns']:.0f}, "
        f"histogram observe {win['histogram_observe_ns']:.0f}, "
        f"p99 read {win['quantile_read_ns']:.0f}, "
        f"rate read {win['rate_read_ns']:.0f}"
    )
    expo = bench_exposition(rng)
    report["exposition"] = expo
    print(
        f"exposition: {expo['families']} families, "
        f"{expo['output_bytes']} bytes, {expo['render_us']:.0f}µs/render"
    )

    # -- classify: off / metrics / metrics+trace --------------------------
    batch = make_batch(size, rng)

    t_off = run_classify(batch, trials)

    registry = MetricsRegistry()
    obs_runtime.enable(metrics=registry)
    try:
        t_metrics = run_classify(batch, trials)
    finally:
        obs_runtime.disable()

    trace_registry = MetricsRegistry()
    obs_runtime.enable(
        trace=Tracer([NullSink()], level=TRACE_DETAIL), metrics=trace_registry
    )
    try:
        t_traced = run_classify(batch, trials)
    finally:
        obs_runtime.disable()

    sites = site_count(registry)
    per_site_ns = max(
        prim["scoped_timer_ns"],
        prim["timed_decorator_ns"],
        prim["null_span_ns"],
        prim["null_event_ns"],
        prim["enabled_branch_ns"],
    )
    disabled_overhead_pct = 100.0 * (sites * per_site_ns * 1e-9) / t_off

    report["classify"] = {
        "disabled_seconds": t_off,
        "metrics_seconds": t_metrics,
        "traced_seconds": t_traced,
        "metrics_overhead_pct": 100.0 * (t_metrics - t_off) / t_off,
        "traced_overhead_pct": 100.0 * (t_traced - t_off) / t_off,
        "instrumentation_sites": sites,
        "per_site_ns": per_site_ns,
        "disabled_overhead_pct": disabled_overhead_pct,
    }
    report["metrics_snapshot"] = registry.snapshot()

    print(
        f"classify: off {t_off:.3f}s, metrics {t_metrics:.3f}s "
        f"(+{report['classify']['metrics_overhead_pct']:.1f}%), "
        f"traced {t_traced:.3f}s "
        f"(+{report['classify']['traced_overhead_pct']:.1f}%)"
    )
    print(
        f"disabled overhead: {sites} sites x {per_site_ns:.0f}ns = "
        f"{disabled_overhead_pct:.3f}% of the disabled run "
        f"(limit {OVERHEAD_LIMIT_PCT}%)"
    )

    out = Path(args.out) if args.out else Path(__file__).resolve().parents[1] / "BENCH_obs.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if disabled_overhead_pct >= OVERHEAD_LIMIT_PCT:
        print(
            f"FAIL: disabled-mode overhead {disabled_overhead_pct:.2f}% "
            f">= {OVERHEAD_LIMIT_PCT}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
