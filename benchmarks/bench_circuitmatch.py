"""Logic verification — whole-circuit correspondence recovery.

The paper's Section 7 motivation: differentiate variables across output
functions so the input correspondence of two circuit descriptions can
be recovered.  This harness scrambles benchmark circuits behind hidden
correspondences and times the recovery, plus the negative path (a
planted single-minterm bug must be refuted)."""

from __future__ import annotations

import random
import time

import pytest

from _report import emit, emit_header
from repro.benchcircuits import build_circuit
from repro.benchcircuits.generators import OutputFunction
from repro.boolfunc.truthtable import TruthTable
from repro.core.circuitmatch import match_circuits, scramble_circuit, verify_correspondence

CIRCUITS = ["con1", "z4ml", "rd73", "cm138a", "misex1", "ldd", "x2", "sao2"]


@pytest.mark.parametrize("name", CIRCUITS)
def test_verify_scrambled(benchmark, name):
    spec = build_circuit(name)
    impl, _ = scramble_circuit(spec, random.Random(17))

    def run():
        corr = match_circuits(spec, impl)
        assert corr is not None
        return corr

    corr = benchmark(run)
    assert verify_correspondence(spec, impl, corr)


def test_buggy_circuit_refuted(benchmark):
    spec = build_circuit("rd73")
    impl, _ = scramble_circuit(spec, random.Random(23))
    victim = impl.outputs[0]
    impl.outputs[0] = OutputFunction(
        victim.name,
        victim.table ^ TruthTable.from_minterms(victim.table.n, [1]),
        victim.support,
    )
    result = benchmark(match_circuits, spec, impl)
    assert result is None


def test_verification_scaling_table(benchmark):
    def run():
        rows = []
        for name in ("con1", "rd73", "misex1", "ldd", "cm138a", "duke2", "cc"):
            spec = build_circuit(name)
            impl, _ = scramble_circuit(spec, random.Random(5))
            t0 = time.perf_counter()
            corr = match_circuits(spec, impl)
            elapsed = time.perf_counter() - t0
            assert corr is not None
            rows.append((name, spec.n_inputs, spec.n_outputs, elapsed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_header("Logic verification — hidden-correspondence recovery")
    emit(f"{'circuit':<10} {'#I':>4} {'#O':>4} {'time':>10}")
    for name, n_i, n_o, elapsed in rows:
        emit(f"{name:<10} {n_i:>4} {n_o:>4} {elapsed * 1e3:>8.1f}ms")
