"""Report helpers for the benchmark harness.

Every module prints the paper-style table it regenerates through
:func:`emit`.  pytest captures test output at the file-descriptor
level, so the lines are buffered here and flushed by the
``pytest_terminal_summary`` hook in ``conftest.py`` — they appear after
the pytest-benchmark statistics in the terminal (and in
``bench_output.txt`` when tee'd), and are also written to
``benchmarks/results.txt`` for later reference.
"""

from __future__ import annotations

import pathlib
from typing import List

REPORT_BUFFER: List[str] = []
RESULTS_FILE = pathlib.Path(__file__).resolve().parent / "results.txt"


def emit(text: str = "") -> None:
    """Queue a report line for the end-of-session summary."""
    REPORT_BUFFER.append(text)


def emit_header(title: str) -> None:
    emit()
    emit("=" * 78)
    emit(title)
    emit("=" * 78)


def flush_to(write_line) -> None:
    """Drain the buffer through a line writer and persist a copy."""
    if not REPORT_BUFFER:
        return
    for line in REPORT_BUFFER:
        write_line(line)
    try:
        RESULTS_FILE.write_text("\n".join(REPORT_BUFFER) + "\n")
    except OSError:  # pragma: no cover - read-only checkouts
        pass
    REPORT_BUFFER.clear()
