"""Whole-netlist mapping benchmark: the two-phase batched flow vs percut.

Standalone (argparse, no pytest) so CI can run it as a smoke step::

    PYTHONPATH=src python benchmarks/bench_netlist_flow.py --guardrail

Maps every circuit of the benchmark registry (53 Table-1 + 4 extra)
through four mapper configurations and records wall-clock, dedup, and
engine counters per mode:

* ``percut`` — the historical baseline: one ``canonical_form`` per cut,
  a mapper-local class cache, and a full matcher call per cache hit.
* ``batched_scalar_cold`` — the two-phase flow (catalog → engine
  classify → witness-replay bind) with the scalar pre-key kernel and no
  persistent store.
* ``batched_batch_cold`` — same with the bit-parallel batch kernel
  (the covers must be identical — kernel choice never changes results).
* ``batched_batch_warm`` — batch kernel plus a class store seeded by a
  prior (untimed) pass over the same circuits, so classification
  warm-starts from store membership probes.

Each mode reuses ONE mapper across all circuits — exactly how a
library-characterization loop would run — so within-mode caches work
for every mode alike.  Every produced cover must pass the mapped-vs-AIG
``verify()`` (outside the timed region).  The acceptance guardrail:
``batched_batch_warm`` total wall-clock beats ``percut``.

Results are written to ``BENCH_netlist_flow.json`` (override with
``--out``); ``--guardrail`` runs a 5-circuit subset and enforces the
win, ``--quick`` is the same subset without the assertion.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.aig import Aig, AigMapper
from repro.benchcircuits.suite import EXTRA_CIRCUITS, TABLE1_CIRCUITS, build_circuit
from repro.engine import ClassificationEngine, EngineOptions
from repro.store import ClassStore

GUARDRAIL_CIRCUITS = ["rd73", "z4ml", "f51m", "9sym", "alu2"]
VERIFY_MAX_INPUTS = 21  # cm150a's exact 21-input mux cone is the widest


def registry_names() -> list:
    return [spec.name for spec in TABLE1_CIRCUITS + EXTRA_CIRCUITS]


def build_aigs(names):
    aigs = {}
    for name in names:
        aigs[name] = Aig.from_netlist(build_circuit(name).to_netlist())
    return aigs


def run_mode(mode_name, mapper, aigs, verify):
    """Map every AIG through one persistent mapper; verify untimed."""
    per_circuit = {}
    total = 0.0
    agg = {
        "cuts_evaluated": 0,
        "distinct_cut_functions": 0,
        "cut_classes": 0,
        "witness_replays": 0,
        "matcher_calls": 0,
        "canonicalizations": 0,
        "engine_canonicalizations": 0,
        "engine_cache_hits": 0,
        "engine_store_hits": 0,
        "engine_membership_hits": 0,
    }
    results = {}
    for name, aig in aigs.items():
        t0 = time.perf_counter()
        result = mapper.map(aig)
        elapsed = time.perf_counter() - t0
        assert result is not None, f"{mode_name}: {name} failed to map"
        total += elapsed
        results[name] = result
        s = result.stats
        for key in agg:
            agg[key] += getattr(s, key)
        per_circuit[name] = {
            "seconds": elapsed,
            "and_nodes": aig.num_ands(),
            "cells": len(result.nodes),
            "area": result.area,
            "cuts_evaluated": s.cuts_evaluated,
            "distinct_cut_functions": s.distinct_cut_functions,
        }
    if verify:
        for name, result in results.items():
            assert result.verify(
                max_inputs=VERIFY_MAX_INPUTS
            ), f"{mode_name}: {name} cover failed verification"
    # percut never fills the distinct-function counter; report no rate.
    dedup = (
        1.0 - agg["distinct_cut_functions"] / agg["cuts_evaluated"]
        if agg["cuts_evaluated"] and agg["distinct_cut_functions"]
        else None
    )
    summary = {
        "total_seconds": total,
        "circuits": len(aigs),
        "circuits_per_second": len(aigs) / total if total else 0.0,
        "dedup_rate": dedup,
        "verified": verify,
        "aggregate": agg,
        "per_circuit": per_circuit,
    }
    dedup_text = f"{dedup * 100.0:5.1f}%" if dedup is not None else "   n/a"
    print(
        f"{mode_name:22s} {total:8.2f}s total  "
        f"{summary['circuits_per_second']:6.2f} circuits/s  "
        f"dedup {dedup_text}  "
        f"store hits {agg['engine_store_hits']}"
    )
    return summary, results


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--guardrail",
        action="store_true",
        help="5-circuit subset; assert batched_batch_warm beats percut",
    )
    ap.add_argument(
        "--quick", action="store_true", help="the guardrail subset, no assertion"
    )
    ap.add_argument("--cut-size", type=int, default=4)
    ap.add_argument("--out", default=None, help="JSON output path")
    ap.add_argument(
        "--no-verify", action="store_true", help="skip cover verification"
    )
    args = ap.parse_args(argv)

    names = (
        GUARDRAIL_CIRCUITS if (args.guardrail or args.quick) else registry_names()
    )
    verify = not args.no_verify
    print(f"building {len(names)} subject AIGs ...")
    aigs = build_aigs(names)

    report = {
        "benchmark": "bench_netlist_flow",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "circuits": names,
        "cut_size": args.cut_size,
        "verify_max_inputs": VERIFY_MAX_INPUTS,
        "modes": {},
    }

    report["modes"]["percut"], _ = run_mode(
        "percut",
        AigMapper(cut_size=args.cut_size, mode="percut"),
        aigs,
        verify,
    )

    report["modes"]["batched_scalar_cold"], scalar_results = run_mode(
        "batched_scalar_cold",
        AigMapper(
            cut_size=args.cut_size,
            engine_options=EngineOptions(kernel="scalar"),
        ),
        aigs,
        verify,
    )

    report["modes"]["batched_batch_cold"], batch_results = run_mode(
        "batched_batch_cold",
        AigMapper(
            cut_size=args.cut_size,
            engine_options=EngineOptions(kernel="batch"),
        ),
        aigs,
        verify,
    )

    # Kernel choice must not change the result: compare the covers.
    for name in names:
        a, b = scalar_results[name], batch_results[name]
        assert a.area == b.area and set(a.nodes) == set(b.nodes), (
            f"kernel scalar vs batch diverged on {name}"
        )

    store_dir = tempfile.mkdtemp(prefix="bench_netlist_store_")
    try:
        seed_store = ClassStore(store_dir, create=True)
        seeder = AigMapper(
            cut_size=args.cut_size,
            engine_options=EngineOptions(kernel="batch"),
            store=seed_store,
        )
        for aig in aigs.values():  # untimed write-back pass
            seeder.map(aig)
        seed_store.flush()

        warm_store = ClassStore(store_dir)
        report["modes"]["batched_batch_warm"], _ = run_mode(
            "batched_batch_warm",
            AigMapper(
                cut_size=args.cut_size,
                engine_options=EngineOptions(kernel="batch"),
                store=warm_store,
            ),
            aigs,
            verify,
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    percut_s = report["modes"]["percut"]["total_seconds"]
    warm_s = report["modes"]["batched_batch_warm"]["total_seconds"]
    report["speedup_warm_vs_percut"] = percut_s / warm_s if warm_s else 0.0
    print(
        f"batched_batch_warm vs percut: {report['speedup_warm_vs_percut']:.2f}x"
    )

    out = args.out or str(
        Path(__file__).resolve().parent.parent / "BENCH_netlist_flow.json"
    )
    Path(out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {out}")

    if args.guardrail and warm_s >= percut_s:
        print(
            f"GUARDRAIL FAIL: batched_batch_warm {warm_s:.2f}s did not beat "
            f"percut {percut_s:.2f}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
