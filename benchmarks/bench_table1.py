"""Table 1 — MCNC benchmark differentiation results.

Regenerates the paper's Table 1: for every circuit, the number of
primary inputs and outputs, the number of *hard* output functions
(``#h``: outputs with non-differentiable variables), and the average
differentiation time per output function.  The paper ran on a DEC5000;
absolute times differ, the per-circuit shape is the comparison point.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import pytest

from _report import emit, emit_header
from repro.benchcircuits import build_circuit, circuit_names, get_spec
from repro.core.differentiate import differentiate_circuit

REPRESENTATIVE = ["9sym", "z4ml", "cm138a", "cm151a", "rd73", "misex1", "duke2"]


def _run_circuit(name: str):
    circuit = build_circuit(name)
    start = time.perf_counter()
    result = differentiate_circuit(
        circuit.name, circuit.n_inputs, circuit.output_pairs(), mode="paper"
    )
    elapsed = time.perf_counter() - start
    per_output = elapsed / max(1, circuit.n_outputs)
    return (
        circuit.n_inputs,
        circuit.n_outputs,
        result.hard_outputs,
        per_output,
        result.table2_set_sizes(),
        [(r.stage, r.used_linear) for r in result.reports],
    )


@pytest.mark.parametrize("name", REPRESENTATIVE)
def test_differentiate_circuit_representative(benchmark, name):
    """Per-circuit timing stats for a representative subset."""
    circuit = build_circuit(name)
    pairs = circuit.output_pairs()
    benchmark(
        differentiate_circuit, circuit.name, circuit.n_inputs, pairs, "paper"
    )


def test_table1_full(benchmark, capsys):
    """The complete Table 1 (all circuits, one differentiation pass)."""
    rows: Dict[str, Tuple[int, int, int, float, List[int]]] = {}

    def run_all():
        for name in circuit_names():
            rows[name] = _run_circuit(name)
        return len(rows)

    count = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert count == len(circuit_names())

    emit_header("TABLE 1 — Results of MCNC benchmark test cases (reproduction)")
    emit(f"{'test case':<10} {'#I':>4} {'#O':>4} {'#h':>4} {'time/output':>12}  exact?")
    for name in circuit_names():
        n_i, n_o, n_h, per_out, _, _ = rows[name]
        exact = "exact" if get_spec(name).exact else "synthetic"
        emit(f"{name:<10} {n_i:>4} {n_o:>4} {n_h:>4} {per_out * 1000:>10.2f}ms  {exact}")
    total_outputs = sum(r[1] for r in rows.values())
    total_hard = sum(r[2] for r in rows.values())
    emit(
        f"{'(totals)':<10} {'':>4} {total_outputs:>4} {total_hard:>4}   "
        f"{len(rows)} circuits"
    )
    # Paper Section 7: "the vast majority of the output functions have a
    # unique GRM" — report how each output was resolved.
    stage_hist: Dict[str, int] = {}
    linear_used = 0
    for _, _, _, _, _, stages in rows.values():
        for stage, used_linear in stages:
            stage_hist[stage] = stage_hist.get(stage, 0) + 1
            linear_used += int(used_linear)
    emit()
    emit("Resolution stage per output function (paper: mostly one GRM):")
    for stage in ("weights", "grm", "symmetry", "extra-grms", "hard"):
        count = stage_hist.get(stage, 0)
        emit(f"  {stage:<12} {count:>5}  ({count / total_outputs * 100:5.1f}%)")
    emit(f"  linear-function trick engaged on {linear_used} outputs")
